"""Transistor-level stage solver.

Integrates the output node of a collapsed CMOS stage,

    C_total * dV_out/dt = I_stage(V_in(t), V_out),

with backward Euler and classical Newton iteration per time step on the
tabulated stage current (paper, Section 3).  Supports the coupling model's
mid-transition drop event (Section 2): when the output reaches the trigger
voltage, it is reset to the restart value and the pre-drop waveform is
discarded.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.newton import solve_newton
from repro.devices.params import ProcessParams, default_process
from repro.devices.tables import StageTable
from repro.errors import SolverError
from repro.waveform.coupling import CouplingLoad
from repro.waveform.pwl import FALLING, RISING, Waveform, opposite


class StageSolverError(SolverError):
    """Raised when the integration cannot complete."""


# Integration defaults, shared by the scalar and batch solvers and part of
# the persistent arc-cache fingerprint (changing them invalidates cached
# arc results).
STEPS_PER_PHASE = 60
SETTLE_FRACTION = 0.02
MAX_EXTENSIONS = 24


@dataclass(frozen=True)
class InputRamp:
    """The switching input: a rail-to-rail saturated ramp.

    ``t_start`` is when the input departs its initial rail; ``transition``
    is the full-swing ramp time; ``direction`` is the *input* transition.
    """

    direction: str
    t_start: float
    transition: float

    def voltage_at(self, t: float, vdd: float) -> float:
        if self.transition <= 0:
            frac = 1.0 if t >= self.t_start else 0.0
        else:
            frac = min(1.0, max(0.0, (t - self.t_start) / self.transition))
        if self.direction == RISING:
            return vdd * frac
        return vdd * (1.0 - frac)

    def t_cross_half(self, vdd: float) -> float:
        """Time the input crosses V_DD/2."""
        return self.t_start + 0.5 * self.transition


@dataclass
class StageResult:
    """Solved output transition of one stage.

    The waveform is the *reported* one: if the coupling drop fired, it
    starts at the restart voltage at the drop time and the glitch before
    it is discarded.  ``t_early``/``t_late`` follow the convention of
    :class:`repro.waveform.ramp.RampEvent`.
    """

    waveform: Waveform
    direction: str
    t_cross: float
    transition: float
    t_early: float
    t_late: float
    coupled: bool
    t_drop: float | None
    newton_iterations: int
    newton_bisections: int = 0


class StageSolver:
    """Integrates one stage's output for a given input ramp and load."""

    def __init__(
        self,
        table: StageTable,
        process: ProcessParams | None = None,
        steps_per_phase: int = STEPS_PER_PHASE,
        settle_fraction: float = SETTLE_FRACTION,
        max_extensions: int = MAX_EXTENSIONS,
    ):
        self.table = table
        self.process = process if process is not None else default_process()
        self.steps_per_phase = steps_per_phase
        self.settle_fraction = settle_fraction
        self.max_extensions = max_extensions

    # -- drive-strength estimate for the time step -------------------------

    def _drive_current(self, out_direction: str) -> float:
        vdd = self.process.vdd
        if out_direction == RISING:
            current = self.table.current(0.0, 0.5 * vdd)
        else:
            current = -self.table.current(vdd, 0.5 * vdd)
        return max(abs(current), 1e-9)

    def solve(
        self,
        input_ramp: InputRamp,
        load: CouplingLoad,
        out_direction: str | None = None,
        aiding: bool = False,
    ) -> StageResult:
        """Compute the output transition.

        ``out_direction`` defaults to the opposite of the input direction
        (negative-unate static CMOS).

        ``aiding=True`` mirrors the coupling model for *same-direction*
        aggressor switching (min-delay/hold analysis): instead of the
        opposing drop, the victim receives a helping divider jump of the
        same amplitude when it crosses the model threshold, moving it
        *forward* along its transition.  The waveform stays monotone; no
        part is discarded.
        """
        process = self.process
        vdd = process.vdd
        if out_direction is None:
            out_direction = opposite(input_ramp.direction)
        rising = out_direction == RISING

        c_total = load.c_total
        if c_total <= 0:
            raise StageSolverError("stage load must have positive capacitance")

        v_from = 0.0 if rising else vdd
        v_to = vdd if rising else 0.0
        settle_band = self.settle_fraction * vdd
        tau = c_total * vdd / self._drive_current(out_direction)
        dt = (input_ramp.transition + 4.0 * tau) / (2.0 * self.steps_per_phase)
        dt = max(dt, 1e-15)

        trigger = None
        if load.has_active_coupling:
            if aiding:
                # Helping jump fires right at the model threshold.
                trigger = load.restart_voltage(out_direction, process)
            else:
                trigger = load.trigger_voltage(out_direction, process)
            # With overwhelming coupling the trigger may sit inside the
            # settle band; clamp so the event still fires.
            if rising:
                trigger = min(trigger, vdd - 2.0 * settle_band)
            else:
                trigger = max(trigger, 2.0 * settle_band)
        if aiding and load.has_active_coupling:
            drop = load.divider_drop(process)
            if rising:
                restart = min(trigger + drop, vdd)
            else:
                restart = max(trigger - drop, 0.0)
        else:
            restart = load.restart_voltage(out_direction, process)

        t = input_ramp.t_start
        v = v_from
        times = [t]
        values = [v]
        fired = False
        t_drop: float | None = None
        newton_total = 0
        newton_bisections = 0

        max_steps = 2 * self.steps_per_phase
        extensions = 0
        step = 0
        lo, hi = -0.4, vdd + 0.4
        while True:
            step += 1
            if step > max_steps:
                if extensions >= self.max_extensions:
                    raise StageSolverError(
                        f"output failed to settle after {extensions} extensions "
                        f"(t={t:.3e}, v={v:.3f}, target={v_to:.3f})"
                    )
                extensions += 1
                dt *= 2.0
                step = 0
                continue

            t_next = t + dt
            vin_next = input_ramp.voltage_at(t_next, vdd)
            coeff = dt / c_total
            v_prev = v

            def residual(x: float) -> tuple[float, float]:
                current, dcurrent = self.table.current_with_dvout(vin_next, x)
                return x - v_prev - coeff * current, 1.0 - coeff * dcurrent

            result = solve_newton(residual, x0=v_prev, tol=1e-7, lo=lo, hi=hi)
            newton_total += result.iterations
            if result.used_bisection:
                newton_bisections += 1
            v_next = result.root

            crossed = False
            if trigger is not None and not fired:
                if rising and v_prev < trigger <= v_next:
                    crossed = True
                elif not rising and v_prev > trigger >= v_next:
                    crossed = True
            if crossed:
                # Locate the crossing inside the step, fire the drop and
                # restart the reported waveform from the restart voltage.
                if v_next != v_prev:
                    frac = (trigger - v_prev) / (v_next - v_prev)
                else:
                    frac = 1.0
                t_drop = t + frac * dt
                fired = True
                t = t_drop
                v = restart
                times = [t]
                values = [v]
                continue

            t = t_next
            v = v_next
            times.append(t)
            values.append(v)

            done_voltage = abs(v - v_to) <= settle_band
            input_done = t >= input_ramp.t_start + input_ramp.transition
            if done_voltage and input_done:
                break

        waveform = _monotone_clean(
            Waveform(np.array(times), np.array(values), out_direction)
        )
        return self._measure(
            waveform, out_direction, fired, t_drop, newton_total, newton_bisections
        )

    def _measure(
        self,
        waveform: Waveform,
        out_direction: str,
        fired: bool,
        t_drop: float | None,
        newton_total: int,
        newton_bisections: int = 0,
    ) -> StageResult:
        return measure_stage_waveform(
            self.process,
            waveform,
            out_direction,
            fired,
            t_drop,
            newton_total,
            newton_bisections,
        )


def measure_stage_waveform(
    process: ProcessParams,
    waveform: Waveform,
    out_direction: str,
    fired: bool,
    t_drop: float | None,
    newton_total: int,
    newton_bisections: int = 0,
) -> StageResult:
    """Extract the ramp-event markers from a solved stage waveform.

    Shared by the scalar and batch solvers so both report identical
    measurements for identical waveforms.
    """
    vdd = process.vdd
    v_th = process.v_th_model
    lo_thr, hi_thr = 0.1 * vdd, 0.9 * vdd
    half = 0.5 * vdd

    t_half = waveform.crossing_time(half)
    if out_direction == RISING:
        t_lo = waveform.crossing_time(lo_thr)
        t_hi = waveform.crossing_time(hi_thr)
        t_early = waveform.crossing_time(v_th)
        t_late = waveform.crossing_time(vdd - v_th)
        transition = (t_hi - t_lo) / 0.8
    else:
        t_hi = waveform.crossing_time(hi_thr)
        t_lo = waveform.crossing_time(lo_thr)
        t_early = waveform.crossing_time(vdd - v_th)
        t_late = waveform.crossing_time(v_th)
        transition = (t_lo - t_hi) / 0.8
    return StageResult(
        waveform=waveform,
        direction=out_direction,
        t_cross=t_half,
        transition=max(transition, 0.0),
        t_early=t_early,
        t_late=t_late,
        coupled=fired,
        t_drop=t_drop,
        newton_iterations=newton_total,
        newton_bisections=newton_bisections,
    )


def _monotone_clean(waveform: Waveform) -> Waveform:
    """Clamp sub-tolerance numerical wiggles so downstream monotonicity
    checks hold exactly."""
    values = waveform.values.copy()
    if waveform.direction == RISING:
        np.maximum.accumulate(values, out=values)
    else:
        np.minimum.accumulate(values, out=values)
    return Waveform(waveform.times, values, waveform.direction)
