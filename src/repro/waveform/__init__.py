"""Waveform engine: PWL waveforms, ramp events, the coupling model and the
transistor-level stage solver."""

from repro.waveform.coupling import (
    CouplingLoad,
    CouplingTreatment,
    aggregate_load,
    model_threshold,
)
from repro.waveform.gatedelay import ArcResult, GateDelayCalculator
from repro.waveform.pwl import FALLING, RISING, Waveform, opposite, ramp_waveform
from repro.waveform.ramp import RampEvent, merge_worst
from repro.waveform.stage import InputRamp, StageResult, StageSolver, StageSolverError

__all__ = [
    "ArcResult",
    "CouplingLoad",
    "CouplingTreatment",
    "FALLING",
    "GateDelayCalculator",
    "InputRamp",
    "RISING",
    "RampEvent",
    "StageResult",
    "StageSolver",
    "StageSolverError",
    "Waveform",
    "aggregate_load",
    "merge_worst",
    "model_threshold",
    "opposite",
    "ramp_waveform",
]
