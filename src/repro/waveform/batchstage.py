"""Batched stage solver: N independent stage outputs in one integration.

The scalar :class:`repro.waveform.stage.StageSolver` integrates one arc at
a time; the dominant cost of the whole analysis is its per-time-step
Newton iteration over tabulated stage currents, paid arc by arc in pure
python.  This module generalizes the same algorithm over a *batch axis*:
one backward-Euler loop advances all arcs of a topological level at once,
with per-element time steps, per-element Newton convergence masks
(:func:`repro.devices.newton.solve_newton_many`), and per-element handling
of the coupling drop event and the extension phases via masking.  Tables
of different cells are served by a :class:`repro.devices.tables.GridBank`
so a single fancy-indexed lookup covers the whole batch.

The numerics mirror the scalar solver step for step -- same time-step
formula, same damped Newton update, same drop/restart logic, same
measurement (:func:`repro.waveform.stage.measure_stage_waveform`) -- so a
batch of size one reproduces the scalar result to floating-point noise;
the property tests pin the agreement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.newton import solve_newton_many
from repro.devices.params import ProcessParams, default_process
from repro.devices.tables import GridBank, StageTable
from repro.obs.metrics import NEWTON_ITER_BUCKETS, MetricsRegistry
from repro.waveform.coupling import CouplingLoad
from repro.waveform.pwl import FALLING, RISING, Waveform, opposite
from repro.waveform import stage as stage_defaults
from repro.waveform.stage import (
    StageResult,
    StageSolverError,
    _monotone_clean,
    measure_stage_waveform,
)


@dataclass
class CompactStageResults:
    """Marker-only results of a batched solve (no waveform objects).

    Column ``i`` holds the same measurements ``solve_many``'s
    :class:`StageResult` ``i`` would carry; the waveform itself is never
    materialised, which is what makes the columnar analysis core's solve
    path cheap.  ``directions`` uses the shared RISING/FALLING strings.
    """

    directions: list[str]
    t_cross: np.ndarray
    transition: np.ndarray
    t_early: np.ndarray
    t_late: np.ndarray
    coupled: np.ndarray
    t_drop: np.ndarray
    newton_iterations: np.ndarray
    newton_bisections: np.ndarray

    def __len__(self) -> int:
        return self.t_cross.size


@dataclass
class _BatchSetup:
    """Per-element integration inputs (the columns the lockstep loop reads)."""

    k: np.ndarray
    in_rising: np.ndarray
    out_rising: np.ndarray
    t_start: np.ndarray
    tt: np.ndarray
    c_total: np.ndarray
    v_from: np.ndarray
    v_to: np.ndarray
    dt: np.ndarray
    trigger: np.ndarray
    restart: np.ndarray
    has_trigger: np.ndarray
    out_directions: list[str]


@dataclass
class _BatchTrace:
    """Everything the lockstep integration recorded, pre-measurement."""

    times_mat: np.ndarray
    values_mat: np.ndarray
    mask_mat: np.ndarray
    reset_snap: np.ndarray
    start_t: np.ndarray
    start_v: np.ndarray
    fired: np.ndarray
    t_drop: np.ndarray
    newton_total: np.ndarray
    bisect_total: np.ndarray


@dataclass(frozen=True)
class BatchArcSpec:
    """One element of a batched stage solve.

    ``table_index`` selects the stage table inside the solver's bank;
    the remaining fields mirror the scalar solver's arguments.
    """

    table_index: int
    input_direction: str
    transition: float
    load: CouplingLoad
    t_start: float = 0.0
    out_direction: str | None = None
    aiding: bool = False


class BatchStageSolver:
    """Integrates many stage outputs simultaneously.

    Construct with the list of distinct :class:`StageTable` objects the
    batch may reference (all built from the same process and point count,
    hence congruent grids), then call :meth:`solve_many` with specs whose
    ``table_index`` points into that list.
    """

    def __init__(
        self,
        tables: list[StageTable],
        process: ProcessParams | None = None,
        steps_per_phase: int = stage_defaults.STEPS_PER_PHASE,
        settle_fraction: float = stage_defaults.SETTLE_FRACTION,
        max_extensions: int = stage_defaults.MAX_EXTENSIONS,
        metrics: MetricsRegistry | None = None,
    ):
        self.tables = tables
        self.bank = GridBank([table.grid for table in tables])
        self.process = process if process is not None else default_process()
        self.steps_per_phase = steps_per_phase
        self.settle_fraction = settle_fraction
        self.max_extensions = max_extensions
        self.metrics = metrics
        if metrics is not None:
            self._h_newton = metrics.histogram(
                "newton.iterations_per_arc", boundaries=NEWTON_ITER_BUCKETS
            )
            self._c_bisect = metrics.counter("newton.bisection_fallbacks")
        else:
            self._h_newton = None
            self._c_bisect = None
        self._drive_cache: dict[tuple[int, str], float] = {}
        self._drive_keepalive: list[StageTable] = []

    # -- drive-strength estimate (same formula as the scalar solver) -------

    def _drive_current(self, table: StageTable, out_direction: str) -> float:
        # Pure in (table, direction): memoized, the scalar table lookups
        # otherwise dominate batch setup.
        key = (id(table), out_direction)
        cached = self._drive_cache.get(key)
        if cached is None:
            vdd = self.process.vdd
            if out_direction == RISING:
                current = table.current(0.0, 0.5 * vdd)
            else:
                current = -table.current(vdd, 0.5 * vdd)
            cached = max(abs(current), 1e-9)
            self._drive_cache[key] = cached
            # Keep the table alive so its id() cannot be recycled.
            self._drive_keepalive.append(table)
        return cached

    def solve_many(self, specs: list[BatchArcSpec]) -> list[StageResult]:
        """Solve all specs and return per-spec :class:`StageResult`."""
        if not specs:
            return []
        setup = self._setup(specs)
        trace = self._integrate(setup)
        results = self._measure_objects(setup, trace)
        self._observe(trace)
        return results

    def solve_many_compact(self, specs: list[BatchArcSpec]) -> CompactStageResults:
        """Solve all specs and return marker columns only.

        Integration is shared line for line with :meth:`solve_many`; the
        measurement runs vectorized over the recorded sample matrices and
        is bit-identical to :func:`measure_stage_waveform` applied per
        element (the equivalence tests pin this).  Elements whose
        waveform never reaches a threshold fall back to the per-element
        path so they raise the identical error.
        """
        if not specs:
            empty_f = np.empty(0)
            empty_i = np.empty(0, dtype=int)
            return CompactStageResults(
                [], empty_f, empty_f.copy(), empty_f.copy(), empty_f.copy(),
                np.empty(0, dtype=bool), empty_f.copy(), empty_i, empty_i.copy(),
            )
        setup = self._setup(specs)
        trace = self._integrate(setup)
        results = self._measure_compact(setup, trace)
        self._observe(trace)
        return results

    def _observe(self, trace: _BatchTrace) -> None:
        if self._h_newton is not None:
            self._h_newton.observe_many(trace.newton_total.tolist())
            fallbacks = int(trace.bisect_total.sum())
            if fallbacks:
                self._c_bisect.inc(fallbacks)

    def _setup(self, specs: list[BatchArcSpec]) -> _BatchSetup:
        process = self.process
        vdd = process.vdd
        settle_band = self.settle_fraction * vdd
        n = len(specs)

        # -- per-element setup (cheap python loop) -------------------------
        k = np.empty(n, dtype=int)
        in_rising = np.empty(n, dtype=bool)
        out_rising = np.empty(n, dtype=bool)
        t_start = np.empty(n)
        tt = np.empty(n)
        c_total = np.empty(n)
        v_from = np.empty(n)
        v_to = np.empty(n)
        dt = np.empty(n)
        trigger = np.full(n, np.nan)
        restart = np.empty(n)
        has_trigger = np.zeros(n, dtype=bool)
        out_directions: list[str] = []

        for i, spec in enumerate(specs):
            load = spec.load
            if load.c_total <= 0:
                raise StageSolverError("stage load must have positive capacitance")
            out_direction = (
                spec.out_direction
                if spec.out_direction is not None
                else opposite(spec.input_direction)
            )
            out_directions.append(out_direction)
            rising = out_direction == RISING
            table = self.tables[spec.table_index]
            k[i] = spec.table_index
            in_rising[i] = spec.input_direction == RISING
            out_rising[i] = rising
            t_start[i] = spec.t_start
            tt[i] = spec.transition
            c_total[i] = load.c_total
            v_from[i] = 0.0 if rising else vdd
            v_to[i] = vdd if rising else 0.0
            tau = load.c_total * vdd / self._drive_current(table, out_direction)
            dt[i] = max((spec.transition + 4.0 * tau) / (2.0 * self.steps_per_phase), 1e-15)

            if load.has_active_coupling:
                if spec.aiding:
                    trig = load.restart_voltage(out_direction, process)
                else:
                    trig = load.trigger_voltage(out_direction, process)
                if rising:
                    trig = min(trig, vdd - 2.0 * settle_band)
                else:
                    trig = max(trig, 2.0 * settle_band)
                trigger[i] = trig
                has_trigger[i] = True
            if spec.aiding and load.has_active_coupling:
                drop = load.divider_drop(process)
                if rising:
                    restart[i] = min(trigger[i] + drop, vdd)
                else:
                    restart[i] = max(trigger[i] - drop, 0.0)
            else:
                restart[i] = load.restart_voltage(out_direction, process)

        return _BatchSetup(
            k=k,
            in_rising=in_rising,
            out_rising=out_rising,
            t_start=t_start,
            tt=tt,
            c_total=c_total,
            v_from=v_from,
            v_to=v_to,
            dt=dt,
            trigger=trigger,
            restart=restart,
            has_trigger=has_trigger,
            out_directions=out_directions,
        )

    def _integrate(self, setup: _BatchSetup) -> _BatchTrace:
        process = self.process
        vdd = process.vdd
        settle_band = self.settle_fraction * vdd
        max_steps = 2 * self.steps_per_phase
        n = setup.k.size
        k = setup.k
        in_rising = setup.in_rising
        out_rising = setup.out_rising
        t_start = setup.t_start
        tt = setup.tt
        c_total = setup.c_total
        v_from = setup.v_from
        v_to = setup.v_to
        dt = setup.dt.copy()
        trigger = setup.trigger
        restart = setup.restart
        has_trigger = setup.has_trigger

        # -- lockstep state ------------------------------------------------
        t = t_start.copy()
        v = v_from.copy()
        step = np.zeros(n, dtype=int)
        extensions = np.zeros(n, dtype=int)
        fired = np.zeros(n, dtype=bool)
        done = np.zeros(n, dtype=bool)
        t_drop = np.full(n, np.nan)
        newton_total = np.zeros(n, dtype=int)
        bisect_total = np.zeros(n, dtype=int)
        t_input_end = t_start + tt

        # Recorded waveforms: one snapshot per lockstep iteration, plus a
        # per-element start point that the drop event can reset.
        start_t = t_start.copy()
        start_v = v_from.copy()
        reset_snap = np.zeros(n, dtype=int)
        rec_t: list[np.ndarray] = []
        rec_v: list[np.ndarray] = []
        rec_m: list[np.ndarray] = []

        lo, hi = -0.4, vdd + 0.4
        # Per-step gather cache: the fancy-index pulls of the static
        # per-element columns (dt, tt, t_start, ...) are only recomputed
        # when the integrating set changes (an element settles, fires, or
        # enters an extension).  Membership equality is the sole
        # invalidation test: ``dt`` only mutates for ``over`` lanes, and
        # those are excluded from ``integ`` on the same iteration.
        cache_mask: np.ndarray | None = None
        while not done.all():
            active = ~done
            step[active] += 1

            # Extension phase: elements that exhausted their step budget
            # double dt and skip this iteration (scalar `continue`).
            over = active & (step > max_steps)
            if over.any():
                exhausted = over & (extensions >= self.max_extensions)
                if exhausted.any():
                    i = int(np.nonzero(exhausted)[0][0])
                    raise StageSolverError(
                        f"output failed to settle after {extensions[i]} extensions "
                        f"(element {i}, t={t[i]:.3e}, v={v[i]:.3f}, "
                        f"target={v_to[i]:.3f})"
                    )
                extensions[over] += 1
                dt[over] *= 2.0
                step[over] = 0

            integ = active & ~over
            advanced = np.zeros(n, dtype=bool)
            if integ.any():
                if cache_mask is None or not np.array_equal(integ, cache_mask):
                    cache_mask = integ.copy()
                    idx = np.nonzero(integ)[0]
                    dt_i = dt[idx]
                    tt_i = tt[idx]
                    t_start_i = t_start[idx]
                    tt_pos = tt_i > 0.0
                    tt_safe = np.where(tt_pos, tt_i, 1.0)
                    in_rising_i = in_rising[idx]
                    coeff = dt_i / c_total[idx]
                    k_i = k[idx]
                    trig_i = trigger[idx]
                    has_trigger_i = has_trigger[idx]
                    any_trigger = bool(has_trigger_i.any())
                    rising_i = out_rising[idx]
                    v_to_i = v_to[idx]
                    t_input_end_i = t_input_end[idx]
                t_next = t[idx] + dt_i
                # Input ramp voltage at t_next (saturated rail-to-rail).
                frac = np.where(
                    tt_pos,
                    np.minimum(np.maximum((t_next - t_start_i) / tt_safe, 0.0), 1.0),
                    (t_next >= t_start_i).astype(float),
                )
                vin_next = np.where(in_rising_i, vdd * frac, vdd * (1.0 - frac))
                v_prev = v[idx]
                # vin is fixed across the Newton iterations of this step,
                # so the x-side table locate happens once per step.
                row_g, tx_g, one_m_tx_g = self.bank.prepare_x(k_i, vin_next)

                def residual(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
                    current, dcurrent = self.bank.gradient_many_prepared(
                        row_g, tx_g, one_m_tx_g, x
                    )
                    np.multiply(current, coeff, out=current)
                    f = x - v_prev
                    f -= current
                    np.multiply(dcurrent, coeff, out=dcurrent)
                    np.subtract(1.0, dcurrent, out=dcurrent)
                    return f, dcurrent

                solved = solve_newton_many(
                    residual, x0=v_prev, tol=1e-7, lo=lo, hi=hi
                )
                newton_total[idx] += solved.iterations
                bisect_total[idx] += solved.used_bisection
                v_next = solved.roots

                # Coupling drop event: detect the trigger crossing inside
                # this step, fire, and restart the reported waveform.
                fire = False
                if any_trigger:
                    may_fire = has_trigger_i & ~fired[idx]
                    crossed = may_fire & np.where(
                        rising_i,
                        (v_prev < trig_i) & (trig_i <= v_next),
                        (v_prev > trig_i) & (trig_i >= v_next),
                    )
                    fire = bool(crossed.any())
                if fire:
                    cidx = idx[crossed]
                    dv = v_next[crossed] - v_prev[crossed]
                    frac_c = np.where(
                        dv != 0.0,
                        (trig_i[crossed] - v_prev[crossed]) / np.where(dv != 0.0, dv, 1.0),
                        1.0,
                    )
                    t_fire = t[cidx] + frac_c * dt[cidx]
                    t_drop[cidx] = t_fire
                    fired[cidx] = True
                    t[cidx] = t_fire
                    v[cidx] = restart[cidx]
                    start_t[cidx] = t_fire
                    start_v[cidx] = restart[cidx]
                    reset_snap[cidx] = len(rec_t)

                    adv = ~crossed
                    aidx = idx[adv]
                    t[aidx] = t_next[adv]
                    v[aidx] = v_next[adv]
                    advanced[aidx] = True

                    done_voltage = np.abs(v[aidx] - v_to[aidx]) <= settle_band
                    input_done = t[aidx] >= t_input_end[aidx]
                    done[aidx[done_voltage & input_done]] = True
                else:
                    t[idx] = t_next
                    v[idx] = v_next
                    advanced[idx] = True

                    done_voltage = np.abs(v_next - v_to_i) <= settle_band
                    input_done = t_next >= t_input_end_i
                    done[idx[done_voltage & input_done]] = True

            rec_t.append(t.copy())
            rec_v.append(v.copy())
            rec_m.append(advanced)

        return _BatchTrace(
            times_mat=np.array(rec_t),
            values_mat=np.array(rec_v),
            mask_mat=np.array(rec_m),
            reset_snap=reset_snap,
            start_t=start_t,
            start_v=start_v,
            fired=fired,
            t_drop=t_drop,
            newton_total=newton_total,
            bisect_total=bisect_total,
        )

    # -- measurement: per-element reference path ---------------------------

    def _element_waveform(self, setup: _BatchSetup, trace: _BatchTrace, i: int) -> Waveform:
        """Reconstruct and clean element ``i``'s reported waveform."""
        sel = trace.mask_mat[trace.reset_snap[i]:, i]
        times = np.concatenate(
            ([trace.start_t[i]], trace.times_mat[trace.reset_snap[i]:, i][sel])
        )
        values = np.concatenate(
            ([trace.start_v[i]], trace.values_mat[trace.reset_snap[i]:, i][sel])
        )
        return _monotone_clean(Waveform(times, values, setup.out_directions[i]))

    def _measure_element(self, setup: _BatchSetup, trace: _BatchTrace, i: int) -> StageResult:
        return measure_stage_waveform(
            self.process,
            self._element_waveform(setup, trace, i),
            setup.out_directions[i],
            bool(trace.fired[i]),
            float(trace.t_drop[i]) if trace.fired[i] else None,
            int(trace.newton_total[i]),
            int(trace.bisect_total[i]),
        )

    def _measure_objects(self, setup: _BatchSetup, trace: _BatchTrace) -> list[StageResult]:
        # -- reconstruct, clean and measure per element --------------------
        return [
            self._measure_element(setup, trace, i) for i in range(setup.k.size)
        ]

    # -- measurement: vectorized compact path ------------------------------

    def _measure_compact(self, setup: _BatchSetup, trace: _BatchTrace) -> CompactStageResults:
        """Vectorized marker extraction over the recorded sample matrices.

        Reproduces, element for element, exactly what
        ``_monotone_clean`` + :func:`measure_stage_waveform` compute on
        the reconstructed waveform:

        * the reported waveform of element ``i`` is its start point
          followed by the *advanced* samples at or after its drop-reset
          snapshot -- modelled here by an ``included`` mask over the
          (start row + iteration rows) matrix;
        * the monotone clean is a running max (rising) / min (falling)
          over included samples, computed by forward-filling excluded
          rows with the previous included value and accumulating (the
          running extremum picks one operand exactly, so no rounding);
        * a threshold crossing interpolates between the first included
          sample at or past the threshold and its included predecessor
          with the identical expression the scalar path uses.

        Elements that never reach a threshold (the scalar path raises)
        fall back to :func:`measure_stage_waveform` per element.
        """
        vdd = self.process.vdd
        v_th = self.process.v_th_model
        n = setup.k.size
        cols = np.arange(n)
        out_rising = setup.out_rising
        sign = np.where(out_rising, 1.0, -1.0)

        steps = trace.times_mat.shape[0]
        rows = np.arange(steps)[:, None]
        included = np.empty((steps + 1, n), dtype=bool)
        included[0] = True
        included[1:] = trace.mask_mat & (rows >= trace.reset_snap[None, :])

        times = np.empty((steps + 1, n))
        times[0] = trace.start_t
        times[1:] = trace.times_mat
        values = np.empty((steps + 1, n))
        values[0] = trace.start_v
        values[1:] = trace.values_mat

        # Forward-fill indices of the most recent included row.
        ff = np.where(included, np.arange(steps + 1)[:, None], 0)
        np.maximum.accumulate(ff, axis=0, out=ff)
        values_filled = np.take_along_axis(values, ff, axis=0)
        times_filled = np.take_along_axis(times, ff, axis=0)
        del ff
        # Signed running extremum: rising columns accumulate their max,
        # falling columns their min (negation is exact for floats).
        signed_clean = np.maximum.accumulate(values_filled * sign[None, :], axis=0)
        del values_filled

        def crossing(threshold: float) -> tuple[np.ndarray, np.ndarray]:
            """Per-element first-crossing time of a shared threshold,
            plus the mask of elements that do cross."""
            match = (signed_clean >= (sign * threshold)[None, :]) & included
            has = match.any(axis=0)
            first = np.argmax(match, axis=0)
            v1 = sign * signed_clean[first, cols]
            t1 = times[first, cols]
            prev = first - 1  # row -1 only read where first == 0, then discarded
            v0 = sign * signed_clean[prev, cols]
            t0 = times_filled[prev, cols]
            with np.errstate(divide="ignore", invalid="ignore"):
                interp = t0 + (threshold - v0) * (t1 - t0) / (v1 - v0)
            out = np.where(
                first == 0, times[0], np.where(v1 == v0, t1, interp)
            )
            return out, has

        t_half, ok_half = crossing(0.5 * vdd)
        t_lo, ok_lo = crossing(0.1 * vdd)
        t_hi, ok_hi = crossing(0.9 * vdd)
        t_near, ok_near = crossing(v_th)
        t_far, ok_far = crossing(vdd - v_th)
        ok = ok_half & ok_lo & ok_hi & ok_near & ok_far

        transition = np.where(
            out_rising, (t_hi - t_lo) / 0.8, (t_lo - t_hi) / 0.8
        )
        np.maximum(transition, 0.0, out=transition)
        t_early = np.where(out_rising, t_near, t_far)
        t_late = np.where(out_rising, t_far, t_near)

        result = CompactStageResults(
            directions=setup.out_directions,
            t_cross=t_half,
            transition=transition,
            t_early=t_early,
            t_late=t_late,
            coupled=trace.fired.copy(),
            t_drop=trace.t_drop.copy(),
            newton_iterations=trace.newton_total.copy(),
            newton_bisections=trace.bisect_total.copy(),
        )
        if not ok.all():
            # Rare: delegate to the scalar measurement, which either
            # produces the value (shouldn't happen if ``ok`` is honest)
            # or raises the identical diagnostic.
            for i in np.nonzero(~ok)[0]:
                measured = self._measure_element(setup, trace, int(i))
                result.t_cross[i] = measured.t_cross
                result.transition[i] = measured.transition
                result.t_early[i] = measured.t_early
                result.t_late[i] = measured.t_late
        return result
