"""Batched stage solver: N independent stage outputs in one integration.

The scalar :class:`repro.waveform.stage.StageSolver` integrates one arc at
a time; the dominant cost of the whole analysis is its per-time-step
Newton iteration over tabulated stage currents, paid arc by arc in pure
python.  This module generalizes the same algorithm over a *batch axis*:
one backward-Euler loop advances all arcs of a topological level at once,
with per-element time steps, per-element Newton convergence masks
(:func:`repro.devices.newton.solve_newton_many`), and per-element handling
of the coupling drop event and the extension phases via masking.  Tables
of different cells are served by a :class:`repro.devices.tables.GridBank`
so a single fancy-indexed lookup covers the whole batch.

The numerics mirror the scalar solver step for step -- same time-step
formula, same damped Newton update, same drop/restart logic, same
measurement (:func:`repro.waveform.stage.measure_stage_waveform`) -- so a
batch of size one reproduces the scalar result to floating-point noise;
the property tests pin the agreement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.newton import solve_newton_many
from repro.devices.params import ProcessParams, default_process
from repro.devices.tables import GridBank, StageTable
from repro.obs.metrics import NEWTON_ITER_BUCKETS, MetricsRegistry
from repro.waveform.coupling import CouplingLoad
from repro.waveform.pwl import RISING, Waveform, opposite
from repro.waveform import stage as stage_defaults
from repro.waveform.stage import (
    StageResult,
    StageSolverError,
    _monotone_clean,
    measure_stage_waveform,
)


@dataclass(frozen=True)
class BatchArcSpec:
    """One element of a batched stage solve.

    ``table_index`` selects the stage table inside the solver's bank;
    the remaining fields mirror the scalar solver's arguments.
    """

    table_index: int
    input_direction: str
    transition: float
    load: CouplingLoad
    t_start: float = 0.0
    out_direction: str | None = None
    aiding: bool = False


class BatchStageSolver:
    """Integrates many stage outputs simultaneously.

    Construct with the list of distinct :class:`StageTable` objects the
    batch may reference (all built from the same process and point count,
    hence congruent grids), then call :meth:`solve_many` with specs whose
    ``table_index`` points into that list.
    """

    def __init__(
        self,
        tables: list[StageTable],
        process: ProcessParams | None = None,
        steps_per_phase: int = stage_defaults.STEPS_PER_PHASE,
        settle_fraction: float = stage_defaults.SETTLE_FRACTION,
        max_extensions: int = stage_defaults.MAX_EXTENSIONS,
        metrics: MetricsRegistry | None = None,
    ):
        self.tables = tables
        self.bank = GridBank([table.grid for table in tables])
        self.process = process if process is not None else default_process()
        self.steps_per_phase = steps_per_phase
        self.settle_fraction = settle_fraction
        self.max_extensions = max_extensions
        self.metrics = metrics
        if metrics is not None:
            self._h_newton = metrics.histogram(
                "newton.iterations_per_arc", boundaries=NEWTON_ITER_BUCKETS
            )
            self._c_bisect = metrics.counter("newton.bisection_fallbacks")
        else:
            self._h_newton = None
            self._c_bisect = None

    # -- drive-strength estimate (same formula as the scalar solver) -------

    def _drive_current(self, table: StageTable, out_direction: str) -> float:
        vdd = self.process.vdd
        if out_direction == RISING:
            current = table.current(0.0, 0.5 * vdd)
        else:
            current = -table.current(vdd, 0.5 * vdd)
        return max(abs(current), 1e-9)

    def solve_many(self, specs: list[BatchArcSpec]) -> list[StageResult]:
        """Solve all specs and return per-spec :class:`StageResult`."""
        if not specs:
            return []
        process = self.process
        vdd = process.vdd
        settle_band = self.settle_fraction * vdd
        max_steps = 2 * self.steps_per_phase
        n = len(specs)

        # -- per-element setup (cheap python loop) -------------------------
        k = np.empty(n, dtype=int)
        in_rising = np.empty(n, dtype=bool)
        out_rising = np.empty(n, dtype=bool)
        t_start = np.empty(n)
        tt = np.empty(n)
        c_total = np.empty(n)
        v_from = np.empty(n)
        v_to = np.empty(n)
        dt = np.empty(n)
        trigger = np.full(n, np.nan)
        restart = np.empty(n)
        has_trigger = np.zeros(n, dtype=bool)
        out_directions: list[str] = []

        for i, spec in enumerate(specs):
            load = spec.load
            if load.c_total <= 0:
                raise StageSolverError("stage load must have positive capacitance")
            out_direction = (
                spec.out_direction
                if spec.out_direction is not None
                else opposite(spec.input_direction)
            )
            out_directions.append(out_direction)
            rising = out_direction == RISING
            table = self.tables[spec.table_index]
            k[i] = spec.table_index
            in_rising[i] = spec.input_direction == RISING
            out_rising[i] = rising
            t_start[i] = spec.t_start
            tt[i] = spec.transition
            c_total[i] = load.c_total
            v_from[i] = 0.0 if rising else vdd
            v_to[i] = vdd if rising else 0.0
            tau = load.c_total * vdd / self._drive_current(table, out_direction)
            dt[i] = max((spec.transition + 4.0 * tau) / (2.0 * self.steps_per_phase), 1e-15)

            if load.has_active_coupling:
                if spec.aiding:
                    trig = load.restart_voltage(out_direction, process)
                else:
                    trig = load.trigger_voltage(out_direction, process)
                if rising:
                    trig = min(trig, vdd - 2.0 * settle_band)
                else:
                    trig = max(trig, 2.0 * settle_band)
                trigger[i] = trig
                has_trigger[i] = True
            if spec.aiding and load.has_active_coupling:
                drop = load.divider_drop(process)
                if rising:
                    restart[i] = min(trigger[i] + drop, vdd)
                else:
                    restart[i] = max(trigger[i] - drop, 0.0)
            else:
                restart[i] = load.restart_voltage(out_direction, process)

        # -- lockstep state ------------------------------------------------
        t = t_start.copy()
        v = v_from.copy()
        step = np.zeros(n, dtype=int)
        extensions = np.zeros(n, dtype=int)
        fired = np.zeros(n, dtype=bool)
        done = np.zeros(n, dtype=bool)
        t_drop = np.full(n, np.nan)
        newton_total = np.zeros(n, dtype=int)
        bisect_total = np.zeros(n, dtype=int)
        t_input_end = t_start + tt

        # Recorded waveforms: one snapshot per lockstep iteration, plus a
        # per-element start point that the drop event can reset.
        start_t = t_start.copy()
        start_v = v_from.copy()
        reset_snap = np.zeros(n, dtype=int)
        rec_t: list[np.ndarray] = []
        rec_v: list[np.ndarray] = []
        rec_m: list[np.ndarray] = []

        lo, hi = -0.4, vdd + 0.4
        while not done.all():
            active = ~done
            step[active] += 1

            # Extension phase: elements that exhausted their step budget
            # double dt and skip this iteration (scalar `continue`).
            over = active & (step > max_steps)
            if over.any():
                exhausted = over & (extensions >= self.max_extensions)
                if exhausted.any():
                    i = int(np.nonzero(exhausted)[0][0])
                    raise StageSolverError(
                        f"output failed to settle after {extensions[i]} extensions "
                        f"(element {i}, t={t[i]:.3e}, v={v[i]:.3f}, "
                        f"target={v_to[i]:.3f})"
                    )
                extensions[over] += 1
                dt[over] *= 2.0
                step[over] = 0

            integ = active & ~over
            advanced = np.zeros(n, dtype=bool)
            if integ.any():
                idx = np.nonzero(integ)[0]
                dt_i = dt[idx]
                t_next = t[idx] + dt_i
                # Input ramp voltage at t_next (saturated rail-to-rail).
                tt_i = tt[idx]
                frac = np.where(
                    tt_i > 0.0,
                    np.clip((t_next - t_start[idx]) / np.where(tt_i > 0.0, tt_i, 1.0), 0.0, 1.0),
                    (t_next >= t_start[idx]).astype(float),
                )
                vin_next = np.where(in_rising[idx], vdd * frac, vdd * (1.0 - frac))
                coeff = dt_i / c_total[idx]
                v_prev = v[idx]
                k_i = k[idx]

                def residual(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
                    current, dcurrent = self.bank.gradient_many(k_i, vin_next, x)
                    return x - v_prev - coeff * current, 1.0 - coeff * dcurrent

                solved = solve_newton_many(
                    residual, x0=v_prev, tol=1e-7, lo=lo, hi=hi
                )
                newton_total[idx] += solved.iterations
                bisect_total[idx] += solved.used_bisection
                v_next = solved.roots

                # Coupling drop event: detect the trigger crossing inside
                # this step, fire, and restart the reported waveform.
                trig_i = trigger[idx]
                may_fire = has_trigger[idx] & ~fired[idx]
                rising_i = out_rising[idx]
                crossed = may_fire & np.where(
                    rising_i,
                    (v_prev < trig_i) & (trig_i <= v_next),
                    (v_prev > trig_i) & (trig_i >= v_next),
                )
                if crossed.any():
                    cidx = idx[crossed]
                    dv = v_next[crossed] - v_prev[crossed]
                    frac_c = np.where(
                        dv != 0.0,
                        (trig_i[crossed] - v_prev[crossed]) / np.where(dv != 0.0, dv, 1.0),
                        1.0,
                    )
                    t_fire = t[cidx] + frac_c * dt[cidx]
                    t_drop[cidx] = t_fire
                    fired[cidx] = True
                    t[cidx] = t_fire
                    v[cidx] = restart[cidx]
                    start_t[cidx] = t_fire
                    start_v[cidx] = restart[cidx]
                    reset_snap[cidx] = len(rec_t)

                adv = ~crossed
                aidx = idx[adv]
                t[aidx] = t_next[adv]
                v[aidx] = v_next[adv]
                advanced[aidx] = True

                done_voltage = np.abs(v[aidx] - v_to[aidx]) <= settle_band
                input_done = t[aidx] >= t_input_end[aidx]
                done[aidx[done_voltage & input_done]] = True

            rec_t.append(t.copy())
            rec_v.append(v.copy())
            rec_m.append(advanced)

        # -- reconstruct, clean and measure per element --------------------
        times_mat = np.array(rec_t)
        values_mat = np.array(rec_v)
        mask_mat = np.array(rec_m)
        results: list[StageResult] = []
        for i in range(n):
            sel = mask_mat[reset_snap[i]:, i]
            times = np.concatenate(
                ([start_t[i]], times_mat[reset_snap[i]:, i][sel])
            )
            values = np.concatenate(
                ([start_v[i]], values_mat[reset_snap[i]:, i][sel])
            )
            waveform = _monotone_clean(Waveform(times, values, out_directions[i]))
            results.append(
                measure_stage_waveform(
                    self.process,
                    waveform,
                    out_directions[i],
                    bool(fired[i]),
                    float(t_drop[i]) if fired[i] else None,
                    int(newton_total[i]),
                    int(bisect_total[i]),
                )
            )
        if self._h_newton is not None:
            self._h_newton.observe_many(newton_total.tolist())
            fallbacks = int(bisect_total.sum())
            if fallbacks:
                self._c_bisect.inc(fallbacks)
        return results
