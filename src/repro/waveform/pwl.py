"""Piecewise-linear waveforms.

The coupling model keeps "all waveforms monotonously rising or falling"
(paper, Section 2), so a waveform here is a monotone PWL voltage-vs-time
trace.  Waveforms are produced by the stage solver and by the validation
simulator; the STA propagates the compact ramp summary of
:mod:`repro.waveform.ramp` instead, but both support the same threshold
queries.
"""

from __future__ import annotations

import numpy as np

RISING = "rise"
FALLING = "fall"


def opposite(direction: str) -> str:
    """The opposing transition direction."""
    if direction == RISING:
        return FALLING
    if direction == FALLING:
        return RISING
    raise ValueError(f"unknown direction {direction!r}")


class Waveform:
    """A monotone piecewise-linear voltage waveform."""

    __slots__ = ("times", "values", "direction")

    def __init__(self, times, values, direction: str | None = None):
        self.times = np.asarray(times, dtype=float)
        self.values = np.asarray(values, dtype=float)
        if self.times.ndim != 1 or self.times.shape != self.values.shape:
            raise ValueError("times and values must be 1-D arrays of equal length")
        if self.times.size < 2:
            raise ValueError("waveform needs at least two points")
        if np.any(np.diff(self.times) < 0):
            raise ValueError("times must be non-decreasing")
        if direction is None:
            direction = RISING if self.values[-1] >= self.values[0] else FALLING
        if direction not in (RISING, FALLING):
            raise ValueError(f"unknown direction {direction!r}")
        self.direction = direction

    # -- queries -----------------------------------------------------------

    @property
    def t_start(self) -> float:
        return float(self.times[0])

    @property
    def t_end(self) -> float:
        return float(self.times[-1])

    @property
    def v_start(self) -> float:
        return float(self.values[0])

    @property
    def v_end(self) -> float:
        return float(self.values[-1])

    def is_monotone(self, tolerance: float = 1e-9) -> bool:
        diffs = np.diff(self.values)
        if self.direction == RISING:
            return bool(np.all(diffs >= -tolerance))
        return bool(np.all(diffs <= tolerance))

    def value_at(self, t: float) -> float:
        """Voltage at time ``t`` (clamped to the end values outside)."""
        return float(np.interp(t, self.times, self.values))

    def crossing_time(self, threshold: float) -> float:
        """First time the waveform crosses ``threshold``.

        Raises ``ValueError`` if the waveform never reaches it.
        """
        v = self.values
        if self.direction == RISING:
            idx = np.nonzero(v >= threshold)[0]
        else:
            idx = np.nonzero(v <= threshold)[0]
        if idx.size == 0:
            raise ValueError(
                f"waveform ({self.direction}, {v[0]:.3f}->{v[-1]:.3f} V) "
                f"never crosses {threshold:.3f} V"
            )
        i = int(idx[0])
        if i == 0:
            return float(self.times[0])
        t0, t1 = self.times[i - 1], self.times[i]
        v0, v1 = v[i - 1], v[i]
        if v1 == v0:
            return float(t1)
        return float(t0 + (threshold - v0) * (t1 - t0) / (v1 - v0))

    def transition_time(self, lo_frac: float = 0.1, hi_frac: float = 0.9) -> float:
        """Slew between the given swing fractions, extrapolated to the full
        swing (the convention the ramp model uses)."""
        v_lo = min(self.v_start, self.v_end)
        v_hi = max(self.v_start, self.v_end)
        swing = v_hi - v_lo
        if swing <= 0:
            return 0.0
        a = v_lo + lo_frac * swing
        b = v_lo + hi_frac * swing
        if self.direction == RISING:
            t_a, t_b = self.crossing_time(a), self.crossing_time(b)
        else:
            t_a, t_b = self.crossing_time(b), self.crossing_time(a)
        return (t_b - t_a) / (hi_frac - lo_frac)

    def shifted(self, dt: float) -> "Waveform":
        """The same waveform translated in time."""
        return Waveform(self.times + dt, self.values.copy(), self.direction)

    def clipped_from(self, t: float) -> "Waveform":
        """The waveform from time ``t`` onward (used to discard the
        pre-coupling glitch: "the waveform before the occurrence of the
        coupling is completely ignored")."""
        mask = self.times >= t
        idx = np.nonzero(mask)[0]
        if idx.size == 0:
            raise ValueError(f"cannot clip waveform from t={t}: too few points remain")
        start = int(idx[0])
        times = self.times[start:]
        values = self.values[start:]
        if start > 0 and self.times[start] > t:
            v_at = self.value_at(t)
            times = np.concatenate(([t], times))
            values = np.concatenate(([v_at], values))
        if times.size < 2:
            raise ValueError(f"cannot clip waveform from t={t}: too few points remain")
        return Waveform(times, values, self.direction)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Waveform({self.direction}, {self.v_start:.2f}->{self.v_end:.2f} V, "
            f"t=[{self.t_start:.3e}, {self.t_end:.3e}], n={self.times.size})"
        )


def ramp_waveform(
    t_start: float,
    transition: float,
    v_from: float,
    v_to: float,
) -> Waveform:
    """An ideal saturated ramp between two voltages."""
    if transition <= 0:
        transition = 1e-15
    times = [t_start - max(transition, 1e-12), t_start, t_start + transition]
    values = [v_from, v_from, v_to]
    direction = RISING if v_to >= v_from else FALLING
    return Waveform(times, values, direction)
