"""Compact ramp summary of a waveform, as propagated by the STA.

A :class:`RampEvent` is what travels along timing arcs: direction, the
50 %-crossing time, the full-swing transition time, and the two
model-threshold crossings the crosstalk algorithms compare (Section 5 of
the paper: "thresholds have to be defined.  A safe and conservative choice
is to take the same threshold voltages as chosen for the coupling model"):

* ``t_early`` -- crossing of the *near-start* threshold (``V_th`` for a
  rising net, ``V_DD - V_th`` for a falling net).  The earliest possible
  activity of this transition; the one-step algorithm compares the victim's
  best-case ``t_early`` against aggressor quiescence.
* ``t_late`` -- crossing of the *near-end* threshold (``V_DD - V_th`` for
  rising, ``V_th`` for falling).  After ``t_late`` the transition is
  complete to within the model threshold: the net is *quiet* for this
  direction from then on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.waveform.pwl import FALLING, RISING


@dataclass(frozen=True)
class RampEvent:
    """One propagated transition on a net.

    All times are absolute within the clock cycle (seconds).
    """

    direction: str
    t_cross: float
    transition: float
    t_early: float
    t_late: float

    def __post_init__(self) -> None:
        if self.direction not in (RISING, FALLING):
            raise ValueError(f"unknown direction {self.direction!r}")
        if self.transition < 0:
            raise ValueError("transition time must be non-negative")
        if self.t_late < self.t_early - 1e-18:
            raise ValueError(
                f"t_late ({self.t_late}) must not precede t_early ({self.t_early})"
            )

    def shifted(self, dt: float) -> "RampEvent":
        """The same event translated in time (used to add wire delay)."""
        return replace(
            self,
            t_cross=self.t_cross + dt,
            t_early=self.t_early + dt,
            t_late=self.t_late + dt,
        )

    def with_transition(self, transition: float) -> "RampEvent":
        return replace(self, transition=transition)

    def dominates(self, other: "RampEvent") -> bool:
        """True if keeping only ``self`` is conservative: no marker of
        ``other`` exceeds the corresponding marker of ``self``."""
        return (
            self.t_cross >= other.t_cross
            and self.t_late >= other.t_late
            and self.t_early <= other.t_early
            and self.transition >= other.transition
        )


def merge_worst(a: RampEvent | None, b: RampEvent | None) -> RampEvent | None:
    """Pointwise-worst merge of two events of the same direction.

    Static timing propagates one conservative event per (net, direction):
    latest 50 % crossing and quiescence, earliest possible activity,
    slowest transition.  The result upper-bounds both inputs.
    """
    if a is None:
        return b
    if b is None:
        return a
    if a.direction != b.direction:
        raise ValueError(f"cannot merge {a.direction} with {b.direction}")
    return RampEvent(
        direction=a.direction,
        t_cross=max(a.t_cross, b.t_cross),
        transition=max(a.transition, b.transition),
        t_early=min(a.t_early, b.t_early),
        t_late=max(a.t_late, b.t_late),
    )
