"""Deterministic fault injection for the analysis runtime.

Each injector forces one failure mode the runtime claims to survive --
Newton divergence, worker death/hangs, cache corruption, mid-run
interrupts -- in a way that is reproducible from a seed, so robustness
tests assert exact outcomes instead of racing real faults.

All injectors are context managers (or small factories) with no global
state left behind: monkey-patched solver methods are restored on exit
and worker-fault specs are cleared from the calculator.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from typing import Callable, Iterable

from repro.core.propagation import PassResult
from repro.errors import AnalysisInterrupted
from repro.waveform.batchstage import BatchStageSolver
from repro.waveform.gatedelay import GateDelayCalculator
from repro.waveform.stage import StageSolver, StageSolverError


@contextmanager
def newton_failures(rate: float = 1.0, seed: int = 0):
    """Make a deterministic fraction of stage solves fail.

    Both the scalar and the batch solver entry points are patched: each
    call draws from one seeded stream and raises
    :class:`StageSolverError` (the taxonomy's ``SolverError``) with
    probability ``rate``.  Because the analysis evaluates arcs in a
    deterministic order, a given ``(rate, seed)`` always fails the same
    arcs.
    """
    rng = random.Random(seed)
    original_solve = StageSolver.solve
    original_solve_many = BatchStageSolver.solve_many

    def failing_solve(self, *args, **kwargs):
        if rng.random() < rate:
            raise StageSolverError("injected Newton failure")
        return original_solve(self, *args, **kwargs)

    def failing_solve_many(self, *args, **kwargs):
        if rng.random() < rate:
            raise StageSolverError("injected Newton failure (batch)")
        return original_solve_many(self, *args, **kwargs)

    StageSolver.solve = failing_solve
    BatchStageSolver.solve_many = failing_solve_many
    try:
        yield
    finally:
        StageSolver.solve = original_solve
        BatchStageSolver.solve_many = original_solve_many


@contextmanager
def worker_faults(
    calculator: GateDelayCalculator,
    action: str = "kill",
    times: int = 1,
    seconds: float = 30.0,
    chunks: Iterable[int] | None = None,
):
    """Arm worker-pool faults on ``calculator``.

    ``action="kill"`` makes the worker die via ``os._exit`` (what an OOM
    kill looks like); ``action="hang"`` makes it sleep for ``seconds``.
    The spec is consumed parent-side on chunk submission, so ``times=N``
    fires on exactly the first N matching submissions regardless of
    worker scheduling.  ``chunks`` restricts injection to those chunk
    indices.
    """
    calculator.pool_fault = {
        "action": action,
        "times": times,
        "seconds": seconds,
        "chunks": set(chunks) if chunks is not None else None,
    }
    try:
        yield
    finally:
        calculator.pool_fault = None


def corrupt_file(path: str, mode: str = "truncate", seed: int = 0) -> None:
    """Corrupt an on-disk artifact the way real corruption looks.

    ``truncate`` keeps a prefix (a torn write); ``bitflip`` flips one
    deterministically chosen bit in place (bit rot).  Both leave the
    file present so loaders must *detect* the damage rather than miss
    the file.
    """
    with open(path, "rb") as handle:
        blob = bytearray(handle.read())
    if not blob:
        raise ValueError(f"cannot corrupt empty file {path!r}")
    rng = random.Random(seed)
    if mode == "truncate":
        keep = max(1, len(blob) // 2)
        blob = blob[:keep]
    elif mode == "bitflip":
        index = rng.randrange(len(blob))
        blob[index] ^= 1 << rng.randrange(8)
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    with open(path, "wb") as handle:
        handle.write(bytes(blob))


# -- fleet fault specs (see repro.service.fleet / .router) ------------------


def kill_shard(fleet, index: int) -> None:
    """SIGKILL one shard process: what an OOM kill or segfault looks
    like.  The supervisor detects the death, the router fails the
    shard's sessions over on first touch."""
    fleet.kill(index)


@contextmanager
def hang_shard(fleet, index: int):
    """SIGSTOP one shard for the duration of the block: the process
    stays alive to the OS but answers nothing, which must trip the
    probe-deadline path (not the process-death path).  Resumed on exit
    so a later supervisor kill, if one happened, finds a stoppable
    process either way."""
    fleet.pause(index)
    try:
        yield
    finally:
        fleet.resume(index)


@contextmanager
def drop_links(router, indices: Iterable[int]):
    """Simulate a router<->shard network partition: calls on the named
    shards' links raise ``ShardLinkDown`` without touching the socket,
    so the shard itself stays healthy (and its warm state survives for
    the post-partition 404-replay path to find missing)."""
    indices = list(indices)
    dropped = []
    for index in indices:
        link = router.links.get(index)
        if link is not None:
            link.dropped = True
            dropped.append(link)
    try:
        yield
    finally:
        for link in dropped:
            link.dropped = False


@contextmanager
def corrupt_handoff(router, mode: str = "bitflip", times: int = 1):
    """Arm mid-handoff corruption on the router: the next ``times``
    encoded failover payloads are damaged in flight (``bitflip`` breaks
    the checksum, ``truncate`` drops the edit log), forcing the
    receiving shard's CheckpointError rejection and the router's
    re-encode retry."""
    if mode not in ("bitflip", "truncate"):
        raise ValueError(f"unknown handoff corruption mode {mode!r}")
    router.handoff_fault = {"mode": mode, "times": times}
    try:
        yield
    finally:
        router.handoff_fault = None


def interrupt_after_pass(passes: int) -> Callable[[int, PassResult], None]:
    """An ``after_pass`` hook that raises :class:`AnalysisInterrupted`
    once ``passes`` passes have completed (and been checkpointed)."""

    def hook(index: int, result: PassResult) -> None:
        if index >= passes:
            raise AnalysisInterrupted(
                f"injected interrupt after pass {index}", passes_completed=index
            )

    return hook
