"""Deterministic fault-injection utilities for robustness testing."""

from repro.testing.faults import (
    corrupt_file,
    corrupt_handoff,
    drop_links,
    hang_shard,
    interrupt_after_pass,
    kill_shard,
    newton_failures,
    worker_faults,
)

__all__ = [
    "corrupt_file",
    "corrupt_handoff",
    "drop_links",
    "hang_shard",
    "interrupt_after_pass",
    "kill_shard",
    "newton_failures",
    "worker_faults",
]
