"""Deterministic fault-injection utilities for robustness testing."""

from repro.testing.faults import (
    corrupt_file,
    interrupt_after_pass,
    newton_failures,
    worker_faults,
)

__all__ = [
    "corrupt_file",
    "interrupt_after_pass",
    "newton_failures",
    "worker_faults",
]
