"""NLDM-style cell characterization.

Sweeps every library arc over an (input slew x output load) grid with the
transistor-level stage solver, producing the delay/transition lookup
tables that conventional gate-level STA consumes -- and a table-lookup
delay calculator built on them.  Comparing that calculator against the
transistor-level engine quantifies the paper's Section 3 argument for
transistor-level timing analysis.
"""

from repro.characterize.characterize import (
    ArcTable,
    CellCharacterization,
    LibraryCharacterization,
    characterize_cell,
    characterize_library,
    default_load_grid,
    default_slew_grid,
)
from repro.characterize.liberty import parse_liberty, write_liberty
from repro.characterize.nldm import NldmDelayCalculator

__all__ = [
    "ArcTable",
    "CellCharacterization",
    "LibraryCharacterization",
    "NldmDelayCalculator",
    "characterize_cell",
    "characterize_library",
    "default_load_grid",
    "default_slew_grid",
    "parse_liberty",
    "write_liberty",
]
