"""Table-lookup (NLDM) delay calculator.

Implements the same arc interface as the transistor-level
:class:`~repro.waveform.gatedelay.GateDelayCalculator`, but answers from
characterized slew x load tables.  Coupling capacitances are handled the
only way a capacitance-only table model can: folded into the load, at 1x
(ignore) or 2x (the classical "static doubled" approach).  The active
coupling model of the paper fundamentally cannot be expressed here --
which is exactly the comparison the ablation bench quantifies.
"""

from __future__ import annotations

from repro.characterize.characterize import LibraryCharacterization
from repro.circuit.library import CellType
from repro.waveform.coupling import CouplingLoad
from repro.waveform.gatedelay import ArcResult
from repro.waveform.pwl import opposite
from repro.waveform.ramp import RampEvent


class NldmDelayCalculator:
    """Drop-in arc calculator backed by NLDM tables.

    ``coupling_factor`` scales coupling capacitance into the lumped load:
    1.0 reproduces the best-case treatment, 2.0 the static-doubled one.
    Any *active* coupling requested by the caller is folded at
    ``coupling_factor`` as well -- the table model's only option.
    """

    def __init__(
        self,
        characterization: LibraryCharacterization,
        coupling_factor: float = 2.0,
    ):
        if coupling_factor < 0:
            raise ValueError("coupling factor must be non-negative")
        self.characterization = characterization
        self.coupling_factor = coupling_factor
        self.evaluations = 0
        self.cache_hits = 0  # interface parity; lookups are always cheap

    # -- GateDelayCalculator-compatible interface ---------------------------

    def compute_arc(
        self,
        ctype: CellType,
        pin: str,
        input_event: RampEvent,
        load: CouplingLoad,
        aiding: bool = False,
    ) -> RampEvent:
        result = self.compute_arc_relative(
            ctype, pin, input_event.direction, input_event.transition, load, aiding
        )
        t_start = input_event.t_cross - 0.5 * input_event.transition
        return result.to_event(t_start)

    def compute_arc_relative(
        self,
        ctype: CellType,
        pin: str,
        input_direction: str,
        input_transition: float,
        load: CouplingLoad,
        aiding: bool = False,
        quantize_down: bool = False,
    ) -> ArcResult:
        self.evaluations += 1
        arc_table = self.characterization.cell(ctype.name).arc(pin, input_direction)
        c_eff = (
            load.c_ground
            + load.c_couple_passive
            + self.coupling_factor * load.c_couple_active
        )
        delay, transition = arc_table.lookup(input_transition, c_eff)
        t_cross = 0.5 * input_transition + delay
        # Threshold markers approximated from the output ramp shape.
        half_swing = 0.5 * transition
        return ArcResult(
            direction=opposite(input_direction),
            t_cross=t_cross,
            transition=transition,
            t_early=t_cross - half_swing * 0.88,
            t_late=t_cross + half_swing * 0.88,
            coupled=False,
        )

    def cache_stats(self) -> dict[str, int]:
        return {
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "cached_arcs": 0,
            "stage_tables": 0,
        }

    def reset_counters(self) -> None:
        self.evaluations = 0
