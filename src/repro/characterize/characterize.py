"""Arc characterization over a slew x load grid.

For every (cell, input pin, input direction) the stage solver is run at
each grid point with a purely capacitive load; the resulting 50 %-to-50 %
delay and output transition time fill two lookup tables -- the classic
non-linear delay model (NLDM) representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuit.library import CellType, Library, default_library
from repro.devices.params import ProcessParams, default_process
from repro.waveform.coupling import CouplingLoad
from repro.waveform.gatedelay import GateDelayCalculator
from repro.waveform.pwl import FALLING, RISING


def default_slew_grid() -> list[float]:
    """Input transition times covering the circuit-typical range (s),
    including the long wire-degraded slews of big routed designs."""
    return [20e-12, 50e-12, 100e-12, 200e-12, 400e-12, 800e-12, 1600e-12]


def default_load_grid() -> list[float]:
    """Output loads covering fanout-1 up to heavily loaded long nets (F)."""
    return [5e-15, 15e-15, 30e-15, 60e-15, 120e-15, 240e-15, 480e-15]


@dataclass
class ArcTable:
    """Delay and output-transition tables of one timing arc.

    ``delay[i][j]`` is the 50 %-input-to-50 %-output delay at
    ``slews[i]`` input transition and ``loads[j]`` output load;
    ``transition`` holds the output transition times.  The arc's output
    direction is the opposite of ``input_direction`` (negative-unate
    library).
    """

    cell: str
    pin: str
    input_direction: str
    slews: list[float]
    loads: list[float]
    delay: np.ndarray
    transition: np.ndarray

    @property
    def output_direction(self) -> str:
        return FALLING if self.input_direction == RISING else RISING

    def lookup(self, slew: float, load: float) -> tuple[float, float]:
        """Bilinear interpolation of (delay, output transition).

        Queries outside the grid clamp to the edge (standard NLDM
        behaviour; extrapolation is deliberately avoided).
        """
        return (
            _interp2(self.slews, self.loads, self.delay, slew, load),
            _interp2(self.slews, self.loads, self.transition, slew, load),
        )

    def monotone_in_load(self) -> bool:
        """Delay grows with load at every slew (sanity invariant)."""
        return bool(np.all(np.diff(self.delay, axis=1) >= -1e-15))


def _interp2(xs: list[float], ys: list[float], table: np.ndarray, x: float, y: float) -> float:
    x = min(max(x, xs[0]), xs[-1])
    y = min(max(y, ys[0]), ys[-1])
    i = int(np.searchsorted(xs, x, side="right")) - 1
    j = int(np.searchsorted(ys, y, side="right")) - 1
    i = min(max(i, 0), len(xs) - 2)
    j = min(max(j, 0), len(ys) - 2)
    tx = (x - xs[i]) / (xs[i + 1] - xs[i])
    ty = (y - ys[j]) / (ys[j + 1] - ys[j])
    return float(
        table[i, j] * (1 - tx) * (1 - ty)
        + table[i + 1, j] * tx * (1 - ty)
        + table[i, j + 1] * (1 - tx) * ty
        + table[i + 1, j + 1] * tx * ty
    )


@dataclass
class CellCharacterization:
    """All characterized arcs of one cell, keyed by (pin, input dir)."""

    cell: str
    arcs: dict[tuple[str, str], ArcTable] = field(default_factory=dict)

    def arc(self, pin: str, input_direction: str) -> ArcTable:
        return self.arcs[(pin, input_direction)]


@dataclass
class LibraryCharacterization:
    """Characterized arcs for a set of cells."""

    name: str
    slews: list[float]
    loads: list[float]
    cells: dict[str, CellCharacterization] = field(default_factory=dict)

    def cell(self, name: str) -> CellCharacterization:
        return self.cells[name]

    def arc_count(self) -> int:
        return sum(len(c.arcs) for c in self.cells.values())


def characterize_cell(
    ctype: CellType,
    slews: list[float] | None = None,
    loads: list[float] | None = None,
    calculator: GateDelayCalculator | None = None,
) -> CellCharacterization:
    """Characterize every input arc of one cell."""
    slews = slews if slews is not None else default_slew_grid()
    loads = loads if loads is not None else default_load_grid()
    calc = calculator if calculator is not None else GateDelayCalculator()
    result = CellCharacterization(cell=ctype.name)
    pins = ["A"] if ctype.is_sequential else list(ctype.inputs)
    for pin in pins:
        for direction in (RISING, FALLING):
            delay = np.zeros((len(slews), len(loads)))
            transition = np.zeros_like(delay)
            for i, slew in enumerate(slews):
                for j, load in enumerate(loads):
                    arc = calc.compute_arc_relative(
                        ctype, pin, direction, slew, CouplingLoad(c_ground=load)
                    )
                    delay[i, j] = arc.t_cross - 0.5 * slew
                    transition[i, j] = arc.transition
            result.arcs[(pin, direction)] = ArcTable(
                cell=ctype.name,
                pin=pin,
                input_direction=direction,
                slews=list(slews),
                loads=list(loads),
                delay=delay,
                transition=transition,
            )
    return result


def characterize_library(
    library: Library | None = None,
    cells: list[str] | None = None,
    slews: list[float] | None = None,
    loads: list[float] | None = None,
    process: ProcessParams | None = None,
) -> LibraryCharacterization:
    """Characterize a whole library (or the named subset)."""
    library = library if library is not None else default_library()
    slews = slews if slews is not None else default_slew_grid()
    loads = loads if loads is not None else default_load_grid()
    process = process if process is not None else default_process()
    calc = GateDelayCalculator(process=process)
    result = LibraryCharacterization(name=library.name, slews=slews, loads=loads)
    names = cells if cells is not None else library.names()
    for name in names:
        result.cells[name] = characterize_cell(
            library[name], slews=slews, loads=loads, calculator=calc
        )
    return result
