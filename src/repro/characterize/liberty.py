"""Liberty-subset writer and reader.

Serialises a :class:`LibraryCharacterization` to the industry ``.lib``
syntax (the subset real tools agree on: ``cell``/``pin``/``timing`` groups
with ``cell_rise``/``cell_fall``/``rise_transition``/``fall_transition``
tables) and parses that subset back with a small recursive-descent parser
over the generic Liberty group grammar.  Round-tripping is tested; the
interpreter is strict about the pieces it consumes.

Units: time in nanoseconds, capacitance in picofarads (the conventional
Liberty choice).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np

from repro.characterize.characterize import (
    ArcTable,
    CellCharacterization,
    LibraryCharacterization,
)
from repro.waveform.pwl import FALLING, RISING

_TIME_UNIT = 1e-9  # ns
_CAP_UNIT = 1e-12  # pF


# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------


def _fmt(values: list[float], scale: float) -> str:
    return ", ".join(f"{v / scale:.6g}" for v in values)


def write_liberty(char: LibraryCharacterization) -> str:
    """Render the characterization as Liberty text."""
    lines: list[str] = []
    lines.append(f"library ({char.name}) {{")
    lines.append('  time_unit : "1ns";')
    lines.append("  capacitive_load_unit (1, pf);")
    lines.append("  lu_table_template (delay_template) {")
    lines.append("    variable_1 : input_net_transition;")
    lines.append("    variable_2 : total_output_net_capacitance;")
    lines.append(f'    index_1 ("{_fmt(char.slews, _TIME_UNIT)}");')
    lines.append(f'    index_2 ("{_fmt(char.loads, _CAP_UNIT)}");')
    lines.append("  }")
    for cell_name in sorted(char.cells):
        cell = char.cells[cell_name]
        lines.append(f"  cell ({cell_name}) {{")
        lines.append("    pin (Y) {")
        lines.append("      direction : output;")
        by_pin: dict[str, list[ArcTable]] = {}
        for arc in cell.arcs.values():
            by_pin.setdefault(arc.pin, []).append(arc)
        for pin in sorted(by_pin):
            lines.append("      timing () {")
            lines.append(f'        related_pin : "{pin}";')
            for arc in sorted(by_pin[pin], key=lambda a: a.input_direction):
                # Liberty names tables by the *output* transition.
                kind = "rise" if arc.output_direction == RISING else "fall"
                lines.append(f"        cell_{kind} (delay_template) {{")
                lines.append(_values_block(arc.delay))
                lines.append("        }")
                lines.append(f"        {kind}_transition (delay_template) {{")
                lines.append(_values_block(arc.transition))
                lines.append("        }")
            lines.append("      }")
        lines.append("    }")
        lines.append("  }")
    lines.append("}")
    lines.append("")
    return "\n".join(lines)


def _values_block(table: np.ndarray) -> str:
    rows = ['"' + ", ".join(f"{v / _TIME_UNIT:.6g}" for v in row) + '"' for row in table]
    return (
        "          values ( \\\n            "
        + ", \\\n            ".join(rows)
        + " \\\n          );"
    )


# ---------------------------------------------------------------------------
# Generic Liberty group parser
# ---------------------------------------------------------------------------


class LibertyParseError(ValueError):
    """Raised on input outside the supported Liberty subset."""


@dataclass
class Group:
    """One Liberty group: ``name (args...) { attrs / children }``."""

    name: str
    args: list[str]
    attrs: dict[str, str] = field(default_factory=dict)
    children: list["Group"] = field(default_factory=list)

    def find(self, name: str) -> list["Group"]:
        return [child for child in self.children if child.name == name]


_TOKEN = re.compile(
    r"""\s*(?:
        (?P<string>"(?:[^"\\]|\\.)*")
      | (?P<punct>[{}():;,])
      | (?P<word>[^\s{}():;,"]+)
    )""",
    re.VERBOSE,
)


def _tokenize(text: str) -> list[str]:
    text = text.replace("\\\n", " ")
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    text = re.sub(r"//[^\n]*", " ", text)
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise LibertyParseError(f"cannot tokenize near {remainder[:40]!r}")
        pos = match.end()
        token = match.group("string") or match.group("punct") or match.group("word")
        if token is not None:
            tokens.append(token)
    return tokens


class _Parser:
    def __init__(self, tokens: list[str]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self, expected: str | None = None) -> str:
        if self.pos >= len(self.tokens):
            raise LibertyParseError("unexpected end of input")
        token = self.tokens[self.pos]
        self.pos += 1
        if expected is not None and token != expected:
            raise LibertyParseError(f"expected {expected!r}, got {token!r}")
        return token

    def parse_group(self) -> Group:
        name = self.take()
        self.take("(")
        args: list[str] = []
        while self.peek() != ")":
            token = self.take()
            if token != ",":
                args.append(token.strip('"'))
        self.take(")")
        group = Group(name=name, args=args)
        if self.peek() == ";":
            self.take(";")
            return group
        self.take("{")
        while self.peek() != "}":
            self._parse_statement(group)
        self.take("}")
        return group

    def _parse_statement(self, parent: Group) -> None:
        # Lookahead: IDENT ':' -> attribute; IDENT '(' -> child group.
        after = self.tokens[self.pos + 1] if self.pos + 1 < len(self.tokens) else None
        if after == ":":
            name = self.take()
            self.take(":")
            value_tokens = []
            while self.peek() not in (";", None):
                value_tokens.append(self.take())
            self.take(";")
            parent.attrs[name] = " ".join(t.strip('"') for t in value_tokens)
        elif after == "(":
            parent.children.append(self.parse_group())
        else:
            raise LibertyParseError(
                f"unexpected token {self.peek()!r} in group {parent.name!r}"
            )


def parse_groups(text: str) -> Group:
    """Parse Liberty text into its generic group tree."""
    parser = _Parser(_tokenize(text))
    group = parser.parse_group()
    if parser.peek() is not None:
        raise LibertyParseError(f"trailing content after library: {parser.peek()!r}")
    return group


# ---------------------------------------------------------------------------
# Interpretation of the subset
# ---------------------------------------------------------------------------


_FLOAT_RE = re.compile(r"[-+]?(?:\d+\.?\d*|\.\d+)(?:[eE][-+]?\d+)?")


def _numbers(raw: str) -> list[float]:
    return [float(tok) for tok in _FLOAT_RE.findall(raw)]


def parse_liberty(text: str) -> LibraryCharacterization:
    """Parse Liberty text produced by :func:`write_liberty` (subset)."""
    root = parse_groups(text)
    if root.name != "library":
        raise LibertyParseError(f"top-level group is {root.name!r}, not library")

    templates = root.find("lu_table_template")
    if not templates:
        raise LibertyParseError("missing lu_table_template")
    template = templates[0]
    slews = [v * _TIME_UNIT for v in _numbers(template.attrs.get("index_1", ""))]
    loads = [v * _CAP_UNIT for v in _numbers(template.attrs.get("index_2", ""))]
    if not slews or not loads:
        # index_1 may appear as a child group index_1("...").
        for child in template.children:
            if child.name == "index_1":
                slews = [v * _TIME_UNIT for v in _numbers(" ".join(child.args))]
            if child.name == "index_2":
                loads = [v * _CAP_UNIT for v in _numbers(" ".join(child.args))]
    if not slews or not loads:
        raise LibertyParseError("template lacks index_1/index_2")

    library = LibraryCharacterization(
        name=root.args[0] if root.args else "library", slews=slews, loads=loads
    )
    for cell_group in root.find("cell"):
        cell = CellCharacterization(cell=cell_group.args[0])
        library.cells[cell.cell] = cell
        for pin_group in cell_group.find("pin"):
            for timing in pin_group.find("timing"):
                related = timing.attrs.get("related_pin")
                if related is None:
                    raise LibertyParseError(
                        f"timing group without related_pin in {cell.cell}"
                    )
                tables: dict[tuple[str, str], np.ndarray] = {}
                for child in timing.children:
                    if child.name.startswith("cell_"):
                        kind = ("delay", "rise" if "rise" in child.name else "fall")
                    elif child.name.endswith("_transition"):
                        kind = ("transition", "rise" if "rise" in child.name else "fall")
                    else:
                        continue
                    values: list[float] = []
                    for sub in child.children:
                        if sub.name == "values":
                            values = _numbers(" ".join(sub.args))
                    if not values:
                        values = _numbers(child.attrs.get("values", ""))
                    if len(values) != len(slews) * len(loads):
                        raise LibertyParseError(
                            f"{cell.cell}/{related} {child.name}: expected "
                            f"{len(slews) * len(loads)} values, got {len(values)}"
                        )
                    tables[kind] = (
                        np.array(values).reshape(len(slews), len(loads)) * _TIME_UNIT
                    )
                for out_dir_name in ("rise", "fall"):
                    delay = tables.get(("delay", out_dir_name))
                    transition = tables.get(("transition", out_dir_name))
                    if delay is None and transition is None:
                        continue
                    if delay is None or transition is None:
                        raise LibertyParseError(
                            f"{cell.cell}/{related}: incomplete {out_dir_name} tables"
                        )
                    out_dir = RISING if out_dir_name == "rise" else FALLING
                    in_dir = FALLING if out_dir == RISING else RISING
                    cell.arcs[(related, in_dir)] = ArcTable(
                        cell=cell.cell,
                        pin=related,
                        input_direction=in_dir,
                        slews=list(slews),
                        loads=list(loads),
                        delay=delay,
                        transition=transition,
                    )
    return library
