"""Shared exception taxonomy of the analysis runtime.

The paper's core guarantee (Section 4) is that every pass yields a
conservative upper bound on each net's last-event time.  The right
response to a localized failure is therefore *graceful degradation to a
coarser-but-still-safe bound*, not a crash -- but degrading silently
would hide real problems, so every fault is classified, counted, and
(under ``StaConfig.strict``) re-raised with a type callers can dispatch
on:

``ReproError``
    Base of everything this package raises deliberately.
``InputError``
    The user's input is at fault (malformed netlist, non-finite device
    table, bad configuration).  Subclasses :class:`ValueError` so
    pre-taxonomy callers that caught ``ValueError`` keep working.
``SolverError``
    A numerical solver failed (Newton divergence, missing bisection
    bracket, non-settling integration).  Recoverable by substituting a
    conservative delay bound for the affected arc.
``EngineError``
    The evaluation machinery failed (dead worker process, batch
    timeout, internal phase errors).  Recoverable by retrying and by
    falling back to in-process serial evaluation.
``CacheError``
    A persistent artifact (arc cache, checkpoint) is corrupt.
    Recoverable by quarantining the file and rebuilding.
``CheckpointError``
    A checkpoint file cannot be written or resumed from.
``DegradationBudgetError``
    More arcs were degraded than ``--max-degraded`` allows; the run is
    still conservative but no longer trustworthy enough to report.
``AnalysisInterrupted``
    A cooperative mid-run interrupt (fault injection, shutdown hooks);
    the checkpoint written before the interrupt allows bit-identical
    resumption.

The CLI maps the taxonomy onto a fixed exit-code vocabulary (see
``docs/ROBUSTNESS.md``): 0 ok, 2 input error, 3 degraded-over-budget,
4 internal fault.
"""

from __future__ import annotations

# CLI exit-code taxonomy (documented in docs/ROBUSTNESS.md).
EXIT_OK = 0
EXIT_INPUT_ERROR = 2
EXIT_DEGRADED_OVER_BUDGET = 3
EXIT_INTERNAL_FAULT = 4


class ReproError(Exception):
    """Base class of every deliberate failure in this package."""


class InputError(ReproError, ValueError):
    """The caller's input is invalid (netlist, tables, configuration)."""


class SolverError(ReproError, RuntimeError):
    """A numerical solver failed to produce a result."""


class EngineError(ReproError, RuntimeError):
    """The evaluation machinery (workers, batches, phases) failed."""


class CacheError(ReproError, RuntimeError):
    """A persistent cache artifact is corrupt or unusable."""


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint file cannot be written, read, or resumed from."""


class DegradationBudgetError(ReproError):
    """The run degraded more arcs than the configured budget allows.

    The attached ``result`` (when set) is still a valid conservative
    bound -- the error says "too much of it came from the coarse
    fallback to be worth reporting", not "the analysis is wrong".
    """

    def __init__(self, degraded: int, budget: int, result=None):
        super().__init__(
            f"{degraded} arcs degraded to the conservative fallback, "
            f"exceeding the budget of {budget}"
        )
        self.degraded = degraded
        self.budget = budget
        self.result = result


class AnalysisInterrupted(ReproError):
    """A cooperative interrupt stopped the run between passes."""

    def __init__(self, message: str, passes_completed: int = 0):
        super().__init__(message)
        self.passes_completed = passes_completed
