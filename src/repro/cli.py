"""Command-line interface.

Usage examples::

    python -m repro info s27
    python -m repro analyze s27 --all-modes
    python -m repro analyze path/to/netlist.bench --mode iterative --report-nets
    python -m repro analyze gen:s35932 --scale 0.05 --simulate
    python -m repro generate s38417 --scale 0.1 -o s38417_like.bench
    python -m repro serve --port 9227
    python -m repro client --connect 127.0.0.1:9227 ping

``serve`` starts the long-running timing-query service (persistent
design sessions, incremental what-if analysis; see docs/SERVICE.md) and
``client`` sends it one request and prints the JSON response.

Netlist specifiers (shared with the service's ``open_session``):

* ``s27`` -- the embedded genuine ISCAS89 benchmark,
* ``gen:s35932`` / ``gen:s38417`` / ``gen:s38584`` -- the synthetic
  paper-circuit stand-ins (sized by ``--scale``),
* any other value -- a ``.bench`` file path.
"""

from __future__ import annotations

import argparse
import logging
import sys
import time

from repro import __version__
from repro.circuit import resolve_circuit, validate_circuit, write_bench
from repro.circuit.generators import (
    S35932_SPEC,
    S38417_SPEC,
    S38584_SPEC,
    generate_bench,
)
from repro.core.analyzer import CrosstalkSTA
from repro.core.explain import explain_result, format_explain, validate_explain
from repro.core.modes import AnalysisMode, Engine, StaConfig, WindowCheck
from repro.core.netreport import format_net_report, rank_crosstalk_nets
from repro.core.report import check_mode_ordering, format_table, format_timing_report
from repro.errors import (
    EXIT_DEGRADED_OVER_BUDGET,
    EXIT_INPUT_ERROR,
    EXIT_INTERNAL_FAULT,
    DegradationBudgetError,
    InputError,
    ReproError,
)
from repro.flow import prepare_design
from repro.obs import Observability, metrics_payload, write_metrics

logger = logging.getLogger("repro.cli")

_GEN_SPECS = {
    "s35932": S35932_SPEC,
    "s38417": S38417_SPEC,
    "s38584": S38584_SPEC,
}


# The specifier vocabulary is shared with the timing-query service.
_resolve_circuit = resolve_circuit


def _add_netlist_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("netlist", help="s27 | gen:<name> | path to a .bench file")
    parser.add_argument(
        "--scale", type=float, default=0.05, help="scale for gen: circuits (1.0 = paper size)"
    )


def _add_constraint_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--clock-period",
        type=float,
        default=None,
        metavar="SECONDS",
        help="clock period; enables the backward required-time (slack) "
        "pass and the setup check",
    )
    parser.add_argument(
        "--setup-time",
        type=float,
        default=100e-12,
        metavar="SECONDS",
        help="flip-flop setup requirement (default 100 ps)",
    )
    parser.add_argument(
        "--hold-time",
        type=float,
        default=50e-12,
        metavar="SECONDS",
        help="flip-flop hold requirement (default 50 ps)",
    )


def cmd_info(args: argparse.Namespace) -> int:
    circuit = _resolve_circuit(args.netlist, args.scale)
    print(circuit.stats())
    report = validate_circuit(circuit)
    print(f"validation: {'OK' if report.ok else 'FAILED'}")
    for error in report.errors[:10]:
        logger.error("%s", error)
    if args.verbose:
        for warning in report.warnings[:20]:
            logger.warning("%s", warning)
    return 0 if report.ok else 1


def cmd_analyze(args: argparse.Namespace) -> int:
    circuit = _resolve_circuit(args.netlist, args.scale)
    print(f"{circuit.stats()}")
    t0 = time.time()
    design = prepare_design(circuit)
    logger.info(
        "physical design: %d nets routed, %d coupling pairs (%.1f s)",
        len(design.routing.routes),
        len(design.extraction.coupling_pairs()),
        time.time() - t0,
    )

    config = StaConfig(
        mode=AnalysisMode(args.mode),
        window_check=WindowCheck(args.window_check),
        esperance=args.esperance,
        engine=Engine(args.engine),
        workers=args.workers,
        arc_cache=args.arc_cache,
        incremental=not args.no_incremental,
        strict=args.strict,
        max_degraded=args.max_degraded,
        checkpoint=args.checkpoint,
        worker_retries=args.worker_retries,
        worker_timeout=args.worker_timeout,
        solver_tier=args.solver_tier,
        screen_tolerance=args.screen_tolerance,
        screen_slack_margin=args.screen_slack_margin,
        provenance=not args.no_provenance,
        clock_period=args.clock_period,
        setup_time=args.setup_time,
        hold_time=args.hold_time,
    )
    obs = Observability.tracing() if args.trace else Observability.disabled()
    sta = CrosstalkSTA(design, config, obs=obs)

    exit_code = 0
    if args.all_modes:
        results = sta.run_all_modes()
        print()
        print(format_table(design.name, results, cell_count=circuit.cell_count()))
        violations = check_mode_ordering(results)
        if violations:
            logger.error("mode-ordering violations:")
            for violation in violations:
                logger.error("  %s", violation)
            exit_code = 1
        reference = results[AnalysisMode.ITERATIVE]
    else:
        results = None
        reference = sta.run()
        print(f"\n{reference}")

    if reference.slack is not None:
        # check_setup summary from the backward slack pass (the analyzer
        # ran it because --clock-period was given).
        print(f"\nsetup: {reference.slack.summary()}")
        if not reference.slack.met:
            exit_code = 1

    if args.check_hold:
        from repro.core.constraints import check_hold
        from repro.core.minpath import MinAnalysisMode, MinPropagator

        min_result = MinPropagator(design, config, calculator=sta.calculator).run(
            MinAnalysisMode.WORST
        )
        hold = check_hold(min_result, config.hold_time)
        worst_hold = hold.worst
        status = "MET" if hold.met else f"VIOLATED ({len(hold.failing())} endpoints)"
        print(
            f"hold: requirement {config.hold_time * 1e12:.0f} ps: {status}; "
            f"worst slack {worst_hold.slack * 1e12:+.1f} ps at "
            f"{worst_hold.endpoint} ({worst_hold.direction})"
        )
        if not hold.met:
            exit_code = 1

    if reference.degraded_arcs:
        logger.warning(
            "%d arc(s) were degraded to conservative substitute bounds; the "
            "reported delay is still a valid upper bound (rerun with --strict "
            "to fail fast instead)",
            len(reference.degraded_arcs),
        )

    if args.timing_report:
        print()
        print(format_timing_report(results if results is not None else reference))

    if args.trace:
        if str(args.trace).endswith(".jsonl"):
            obs.tracer.write_jsonl(args.trace)
        else:
            obs.tracer.write_chrome(args.trace)
        logger.info("wrote trace to %s (%d spans)", args.trace, len(obs.tracer.events))

    if args.metrics:
        telemetries = [res.telemetry for res in results.values()] if results is not None else [reference.telemetry]
        payload = metrics_payload(
            design.name,
            {t.mode: t for t in telemetries if t is not None},
            registry=sta.obs.metrics,
        )
        write_metrics(payload, args.metrics)
        logger.info("wrote metrics to %s", args.metrics)

    path = sta.critical_path(reference)
    print(f"\ncritical path ({len(path)} stages):")
    print("  " + " -> ".join(path.net_sequence()))

    if args.report_nets:
        print("\ncrosstalk-critical nets:")
        exposures = rank_crosstalk_nets(design, reference.final_pass, top=args.top)
        print(format_net_report(exposures))

    if args.net_report:
        from repro.core.export import save_json
        from repro.core.netreport import net_report_payload, validate_net_report

        payload = net_report_payload(design, reference.final_pass, top=args.top)
        problems = validate_net_report(payload)
        if problems:  # internal invariant: we emit what we validate
            raise ReproError(f"net report failed self-validation: {problems}")
        save_json(payload, args.net_report)
        logger.info("wrote net report to %s", args.net_report)

    if args.json:
        from repro.core.export import path_to_dict, results_to_dict, save_json, sta_result_to_dict

        if args.all_modes:
            payload = results_to_dict(results)
        else:
            payload = {"modes": {reference.mode.value: sta_result_to_dict(reference)}}
        payload["critical_path"] = path_to_dict(path)
        save_json(payload, args.json)
        logger.info("wrote %s", args.json)

    if args.simulate:
        from repro.validate import align_aggressors, build_path_circuit, quiet_simulation

        state = reference.final_pass.state
        sim_circuit = build_path_circuit(design, path, state)
        quiet = quiet_simulation(sim_circuit, steps=1600)
        windowed = align_aggressors(
            sim_circuit, steps=1600, windows=state.window_snapshot()
        )
        print(f"\nsimulation: quiet {quiet.path_delay*1e9:.3f} ns, "
              f"windowed worst {windowed.path_delay*1e9:.3f} ns, "
              f"STA bound {reference.longest_delay*1e9:.3f} ns")
        if windowed.path_delay > reference.longest_delay:
            logger.error("BOUND VIOLATION")
            return 1
    return exit_code


def cmd_explain(args: argparse.Namespace) -> int:
    """Run one mode and break the worst path(s) down stage by stage.

    The per-stage contributions sum bit-exactly (validated through
    ``float.hex`` round-trips before anything is printed) to the
    reported path delay; each stage carries the provenance the run
    recorded for its winning arc.
    """
    circuit = _resolve_circuit(args.netlist, args.scale)
    design = prepare_design(circuit)
    config = StaConfig(
        mode=AnalysisMode(args.mode),
        engine=Engine(args.engine),
        solver_tier=args.solver_tier,
        screen_tolerance=args.screen_tolerance,
        screen_slack_margin=args.screen_slack_margin,
    )
    sta = CrosstalkSTA(design, config)
    result = sta.run()
    payload = explain_result(design.circuit, result, k=args.paths, top=args.top)
    validate_explain(payload)  # we print only what survives the bit-exact check
    if args.json:
        from repro.core.export import save_json

        save_json(payload, args.json)
        logger.info("wrote explain payload to %s", args.json)
    print(format_explain(payload))
    return 0


def cmd_repair(args: argparse.Namespace) -> int:
    """Crosstalk repair: slack-driven optimizer or legacy spacing rounds.

    With ``--clock-period`` the autonomous optimizer runs over a warm
    in-process session: victims ranked by true slack x coupling
    exposure, candidates evaluated through the incremental what-if path,
    only strict worst-slack improvements committed.  Without it, the
    historical fixed-round respace loop runs.
    """
    circuit = _resolve_circuit(args.netlist, args.scale)
    design = prepare_design(circuit)

    if args.clock_period is not None:
        from repro.flow.optimizer import format_repair
        from repro.service.session import Session

        config = StaConfig(
            mode=AnalysisMode(args.mode),
            clock_period=args.clock_period,
            setup_time=args.setup_time,
            hold_time=args.hold_time,
        )
        session = Session(
            session_id="cli",
            spec=args.netlist,
            design=design,
            config=config,
            obs=Observability.disabled(),
            scale=args.scale,
        )
        transcript = session.repair(
            target_slack=args.target_slack,
            max_edits=args.max_edits,
            beam=args.beam,
            guard_tracks=args.guard_tracks,
            dont_touch=args.dont_touch,
            cold_verify=not args.no_verify,
        )
        if args.json:
            from repro.core.export import save_json

            save_json(transcript, args.json)
            logger.info("wrote repair transcript to %s", args.json)
        print(format_repair(transcript))
        return 0 if transcript["final"]["met"] else 1

    from repro.flow import repair_crosstalk

    current = design
    for round_index in range(1, args.rounds + 1):
        outcome = repair_crosstalk(
            current, top=args.top, guard_tracks=args.guard_tracks
        )
        print(f"round {round_index}: {outcome.summary()}")
        current = outcome.design
        if outcome.improvement <= 0:
            print("no further improvement; stopping")
            break
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import TimingService
    from repro.service.server import serve as serve_service

    config = StaConfig(
        mode=AnalysisMode(args.mode),
        window_check=WindowCheck(args.window_check),
        esperance=args.esperance,
        engine=Engine(args.engine),
        workers=args.workers,
        arc_cache=args.arc_cache,
        incremental=not args.no_incremental,
        strict=args.strict,
        max_degraded=args.max_degraded,
        solver_tier=args.solver_tier,
        screen_tolerance=args.screen_tolerance,
        screen_slack_margin=args.screen_slack_margin,
        provenance=not args.no_provenance,
        clock_period=args.clock_period,
        setup_time=args.setup_time,
        hold_time=args.hold_time,
    )
    obs = (
        Observability.tracing()
        if args.trace or args.trace_dir
        else Observability.disabled()
    )
    service = TimingService(
        config=config,
        max_sessions=args.max_sessions,
        checkpoint_dir=args.checkpoint_dir,
        workers=args.service_workers,
        queue_limit=args.queue_limit,
        default_deadline=args.deadline,
        obs=obs,
    )

    def ready(server) -> None:
        # Parseable readiness line for scripts / the CI smoke job.
        print(f"listening on {server.address}", flush=True)

    try:
        asyncio.run(
            serve_service(
                service, host=args.host, port=args.port, socket_path=args.socket,
                ready=ready, access_log=args.access_log, trace_dir=args.trace_dir,
            )
        )
    except KeyboardInterrupt:
        logger.info("interrupted; shutting down")
        service.close()
    if args.trace:
        if str(args.trace).endswith(".jsonl"):
            obs.tracer.write_jsonl(args.trace)
        else:
            obs.tracer.write_chrome(args.trace)
        logger.info("wrote trace to %s (%d spans)", args.trace, len(obs.tracer.events))
    print("server stopped", flush=True)
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    import signal as signal_module
    import threading

    from repro.service import FleetOptions, FleetRuntime

    options = FleetOptions(
        shards=args.shards,
        workers=args.service_workers,
        queue_limit=args.queue_limit,
        max_sessions=args.max_sessions,
        checkpoint_dir=args.checkpoint_dir,
        default_deadline=args.deadline,
        host=args.shard_host,
        access_log_dir=args.shard_access_log_dir,
    )
    runtime = FleetRuntime(
        options,
        router_host=args.host,
        router_port=args.port,
        access_log=args.access_log,
        probe_interval=args.probe_interval,
    )
    stopped = threading.Event()
    for signum in (signal_module.SIGTERM, signal_module.SIGINT):
        try:
            signal_module.signal(signum, lambda *_: stopped.set())
        except ValueError:  # not the main thread
            pass
    runtime.start()
    # Parseable readiness line for scripts / the CI fleet-smoke job.
    print(f"fleet listening on {runtime.address} ({args.shards} shards)", flush=True)
    try:
        while not stopped.is_set():
            if runtime.router is not None and runtime.router.stopping:
                break
            stopped.wait(0.5)
    except KeyboardInterrupt:
        pass
    finally:
        runtime.stop()
    print("fleet stopped", flush=True)
    return 0


def cmd_client(args: argparse.Namespace) -> int:
    import json

    from repro.service import ServiceCallError, ServiceClient

    params = json.loads(args.params) if args.params else {}
    if not isinstance(params, dict):
        raise InputError("--params must be a JSON object")
    with ServiceClient(args.connect, timeout=args.timeout) as client:
        try:
            if args.no_retry:
                result = client.call(args.method, params)
            else:
                result = client.call_with_retry(args.method, params)
        except ServiceCallError as exc:
            logger.error("%s", exc)
            print(
                json.dumps(
                    {
                        "error": {
                            "code": exc.code,
                            "kind": exc.kind,
                            "message": str(exc),
                            "data": exc.data,
                        }
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
            exit_code = exc.data.get("exit_code")
            return int(exit_code) if exit_code is not None else 1
    if isinstance(result, dict) and set(result) == {"exposition"}:
        # Prometheus text format: print raw, not JSON-wrapped.
        sys.stdout.write(result["exposition"])
    else:
        print(json.dumps(result, indent=2, sort_keys=True))
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    if args.name not in _GEN_SPECS:
        raise InputError(f"unknown generator {args.name!r}; have {sorted(_GEN_SPECS)}")
    netlist = generate_bench(_GEN_SPECS[args.name].scaled(args.scale))
    text = write_bench(netlist)
    if args.output == "-":
        sys.stdout.write(text)
    else:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {len(netlist.gates)} gates to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Crosstalk-aware static timing analysis (Ringe et al., DATE 2000)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error"],
        default="info",
        help="diagnostic verbosity (log lines go to stderr; reports stay on stdout)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="netlist statistics and validation")
    _add_netlist_args(info)
    info.add_argument("-v", "--verbose", action="store_true")
    info.set_defaults(func=cmd_info)

    analyze = sub.add_parser("analyze", help="run the crosstalk-aware STA")
    _add_netlist_args(analyze)
    analyze.add_argument(
        "--mode",
        choices=[m.value for m in AnalysisMode],
        default=AnalysisMode.ITERATIVE.value,
    )
    analyze.add_argument("--all-modes", action="store_true", help="run all five modes")
    analyze.add_argument(
        "--window-check",
        choices=[w.value for w in WindowCheck],
        default=WindowCheck.QUIET.value,
    )
    analyze.add_argument("--esperance", action="store_true")
    analyze.add_argument(
        "--engine",
        choices=[e.value for e in Engine],
        default=Engine.SCALAR.value,
        help="waveform-evaluation backend (batch = vectorized level solver)",
    )
    analyze.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for the batch engine (0/1 = in-process)",
    )
    analyze.add_argument(
        "--arc-cache",
        metavar="FILE",
        help="persistent arc-cache file reused across runs",
    )
    analyze.add_argument(
        "--no-incremental",
        action="store_true",
        help="disable delta-driven reuse between iterative passes "
        "(every pass re-solves every arc; results are identical)",
    )
    analyze.add_argument(
        "--strict",
        action="store_true",
        help="fail fast on internal faults instead of degrading to "
        "conservative substitute bounds",
    )
    analyze.add_argument(
        "--max-degraded",
        type=int,
        default=None,
        metavar="N",
        help="reject the run (exit code 3) when more than N arcs had to be "
        "degraded to substitute bounds",
    )
    analyze.add_argument(
        "--checkpoint",
        metavar="FILE",
        help="iterative mode: persist per-pass state to FILE and resume "
        "from it when present",
    )
    analyze.add_argument(
        "--worker-retries",
        type=int,
        default=2,
        metavar="N",
        help="resubmissions of a dead/timed-out worker chunk before it is "
        "evaluated in-process",
    )
    analyze.add_argument(
        "--worker-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-chunk wall-clock limit for the worker pool",
    )
    analyze.add_argument(
        "--solver-tier",
        choices=["exact", "screened"],
        default="exact",
        help="arc-solving policy: 'exact' runs the full Newton solve on "
        "every arc; 'screened' answers from the per-signature "
        "macromodel/response-surface bank and escalates selectively",
    )
    analyze.add_argument(
        "--screen-tolerance",
        type=float,
        default=100e-12,
        metavar="SECONDS",
        help="screened tier: largest acceptable per-arc error estimate "
        "before escalating to the full solve",
    )
    analyze.add_argument(
        "--screen-slack-margin",
        type=float,
        default=0.15,
        metavar="FRACTION",
        help="screened tier: slack fraction below which cells are refined "
        "to the exact tier (0 disables refinement)",
    )
    analyze.add_argument(
        "--timing-report",
        action="store_true",
        help="print per-phase wall-clock and arc-cache statistics",
    )
    analyze.add_argument("--report-nets", action="store_true", help="rank crosstalk-critical nets")
    analyze.add_argument(
        "--net-report",
        metavar="FILE",
        help="write the crosstalk ranking as schema-tagged JSON "
        "(same payload the service's net_report method returns)",
    )
    analyze.add_argument("--top", type=int, default=15)
    analyze.add_argument("--simulate", action="store_true", help="validate the longest path")
    analyze.add_argument("--json", metavar="FILE", help="write results as JSON")
    analyze.add_argument(
        "--trace",
        metavar="FILE",
        help="write a span trace (Chrome trace-viewer JSON; .jsonl for an event stream)",
    )
    analyze.add_argument(
        "--metrics",
        metavar="FILE",
        help="write the per-mode metrics snapshot as JSON",
    )
    analyze.add_argument(
        "--no-provenance",
        action="store_true",
        help="skip the per-arc provenance ledger (annotation only: delays "
        "are bit-identical either way; 'repro explain' needs it on)",
    )
    _add_constraint_args(analyze)
    analyze.add_argument(
        "--check-hold",
        action="store_true",
        help="also run the min-delay (helping-coupling) analysis and check "
        "every flip-flop input against --hold-time",
    )
    analyze.set_defaults(func=cmd_analyze)

    explain = sub.add_parser(
        "explain",
        help="break the worst path(s) down stage by stage with provenance",
    )
    _add_netlist_args(explain)
    explain.add_argument(
        "--mode",
        choices=[m.value for m in AnalysisMode],
        default=AnalysisMode.ITERATIVE.value,
    )
    explain.add_argument(
        "--engine", choices=[e.value for e in Engine], default=Engine.SCALAR.value
    )
    explain.add_argument(
        "--solver-tier", choices=["exact", "screened"], default="exact"
    )
    explain.add_argument(
        "--screen-tolerance", type=float, default=100e-12, metavar="SECONDS"
    )
    explain.add_argument(
        "--screen-slack-margin", type=float, default=0.15, metavar="FRACTION"
    )
    explain.add_argument(
        "--paths", type=int, default=1, metavar="K", help="worst paths to break down"
    )
    explain.add_argument(
        "--top", type=int, default=10, metavar="N", help="blame-table size"
    )
    explain.add_argument(
        "--json", metavar="FILE", help="write the repro.explain/1 payload as JSON"
    )
    explain.set_defaults(func=cmd_explain)

    repair = sub.add_parser(
        "repair",
        help="repair crosstalk: slack-driven optimizer (--clock-period) or "
        "legacy respace rounds",
    )
    _add_netlist_args(repair)
    repair.add_argument("--top", type=int, default=10, help="legacy mode: victims per round")
    repair.add_argument("--rounds", type=int, default=1, help="legacy mode: respace rounds")
    repair.add_argument("--guard-tracks", type=int, default=1)
    _add_constraint_args(repair)
    repair.add_argument(
        "--mode",
        choices=[m.value for m in AnalysisMode],
        default=AnalysisMode.ITERATIVE.value,
    )
    repair.add_argument(
        "--target-slack",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="optimizer: stop once worst slack reaches this value",
    )
    repair.add_argument(
        "--max-edits",
        type=int,
        default=8,
        metavar="N",
        help="optimizer: committed-edit budget",
    )
    repair.add_argument(
        "--beam",
        type=int,
        default=3,
        metavar="N",
        help="optimizer: victims considered per round",
    )
    repair.add_argument(
        "--dont-touch",
        action="append",
        default=None,
        metavar="NET",
        help="optimizer: never propose edits touching this net (repeatable)",
    )
    repair.add_argument(
        "--no-verify",
        action="store_true",
        help="optimizer: skip the final cold re-analysis bit-identity check",
    )
    repair.add_argument(
        "--json",
        metavar="FILE",
        help="optimizer: write the repro.repair/1 transcript as JSON",
    )
    repair.set_defaults(func=cmd_repair)

    generate = sub.add_parser("generate", help="emit a synthetic .bench netlist")
    generate.add_argument("name", choices=sorted(_GEN_SPECS))
    generate.add_argument("--scale", type=float, default=0.05)
    generate.add_argument("-o", "--output", default="-")
    generate.set_defaults(func=cmd_generate)

    serve = sub.add_parser(
        "serve", help="run the timing-query service (see docs/SERVICE.md)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0, help="TCP port (0 = ephemeral)")
    serve.add_argument(
        "--socket", metavar="PATH", help="serve on a Unix socket instead of TCP"
    )
    serve.add_argument(
        "--max-sessions", type=int, default=8, help="LRU bound on open sessions"
    )
    serve.add_argument(
        "--service-workers", type=int, default=4, help="request worker threads"
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=8,
        help="admitted-but-waiting requests beyond the workers; past that, "
        "requests are rejected with busy (429) + retry_after",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-request deadline (clients may override per request)",
    )
    serve.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="persist iterative-mode session checkpoints here",
    )
    serve.add_argument(
        "--mode",
        choices=[m.value for m in AnalysisMode],
        default=AnalysisMode.ITERATIVE.value,
        help="default analysis mode for new sessions",
    )
    serve.add_argument(
        "--window-check",
        choices=[w.value for w in WindowCheck],
        default=WindowCheck.QUIET.value,
    )
    serve.add_argument("--esperance", action="store_true")
    serve.add_argument(
        "--engine", choices=[e.value for e in Engine], default=Engine.SCALAR.value
    )
    serve.add_argument("--workers", type=int, default=0, help="batch-engine workers")
    serve.add_argument("--arc-cache", metavar="FILE")
    serve.add_argument("--no-incremental", action="store_true")
    serve.add_argument("--strict", action="store_true")
    serve.add_argument("--max-degraded", type=int, default=None, metavar="N")
    serve.add_argument(
        "--solver-tier",
        choices=["exact", "screened"],
        default="exact",
        help="default arc-solving policy for new sessions",
    )
    serve.add_argument(
        "--screen-tolerance", type=float, default=100e-12, metavar="SECONDS"
    )
    serve.add_argument(
        "--screen-slack-margin", type=float, default=0.15, metavar="FRACTION"
    )
    serve.add_argument(
        "--trace",
        metavar="FILE",
        help="write a span trace on shutdown (Chrome trace-viewer JSON; "
        ".jsonl for an event stream)",
    )
    serve.add_argument(
        "--access-log",
        metavar="FILE",
        help="append one JSONL record per request (request id, method, "
        "session, queue wait, solve time, outcome)",
    )
    serve.add_argument(
        "--trace-dir",
        metavar="DIR",
        help="write each request's span subtree to DIR/<request_id>.jsonl",
    )
    serve.add_argument(
        "--no-provenance",
        action="store_true",
        help="default new sessions to no provenance ledger (the 'explain' "
        "RPC then needs a per-session override to turn it back on)",
    )
    _add_constraint_args(serve)
    serve.set_defaults(func=cmd_serve)

    fleet = sub.add_parser(
        "fleet",
        help="run a supervised shard fleet behind a consistent-hash router",
    )
    fleet.add_argument("--shards", type=int, default=2, metavar="N")
    fleet.add_argument(
        "--host", default="127.0.0.1", help="router listen address"
    )
    fleet.add_argument(
        "--port", type=int, default=0, help="router port (0 = ephemeral)"
    )
    fleet.add_argument(
        "--shard-host",
        default="127.0.0.1",
        help="address shard servers bind (and the router dials)",
    )
    fleet.add_argument(
        "--service-workers",
        type=int,
        default=2,
        metavar="N",
        help="analysis threads per shard",
    )
    fleet.add_argument(
        "--queue-limit",
        type=int,
        default=8,
        metavar="N",
        help="per-shard queued requests beyond the workers before 429",
    )
    fleet.add_argument(
        "--max-sessions", type=int, default=8, metavar="N",
        help="per-shard session LRU bound",
    )
    fleet.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="shared iterative-checkpoint directory (lets a replacement "
        "shard resume a dead shard's per-pass state)",
    )
    fleet.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="default per-request deadline on every shard",
    )
    fleet.add_argument(
        "--access-log",
        metavar="FILE",
        help="router JSONL access log (per-request shard + failover events)",
    )
    fleet.add_argument(
        "--shard-access-log-dir",
        metavar="DIR",
        help="per-shard access logs (DIR/shard-<i>.log)",
    )
    fleet.add_argument(
        "--probe-interval", type=float, default=0.5, metavar="SECONDS",
        help="supervisor health-check sweep interval",
    )
    fleet.set_defaults(func=cmd_fleet)

    client = sub.add_parser(
        "client", help="send one request to a running timing-query service"
    )
    client.add_argument(
        "--connect",
        required=True,
        metavar="ADDRESS",
        help="host:port or unix:/path/to.sock",
    )
    client.add_argument("method", help="service method, e.g. ping or open_session")
    client.add_argument(
        "--params", metavar="JSON", help='request parameters, e.g. \'{"netlist": "s27"}\''
    )
    client.add_argument("--timeout", type=float, default=120.0)
    client.add_argument(
        "--no-retry",
        action="store_true",
        help="fail immediately on busy (429) instead of honouring retry_after",
    )
    client.set_defaults(func=cmd_client)
    return parser


def _configure_logging(level_name: str) -> None:
    # Diagnostics go to stderr so report tables on stdout stay parseable.
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
    root = logging.getLogger("repro")
    root.setLevel(getattr(logging, level_name.upper()))
    # Replace rather than stack handlers: main() may run repeatedly in-process.
    root.handlers[:] = [handler]


def main(argv: list[str] | None = None) -> int:
    """Entry point with the exit-code taxonomy.

    0: success.  1: analysis finished but found violations.  2: bad
    input (netlist, tables, arguments).  3: degraded-arc budget
    exceeded.  4: internal fault surfaced in strict mode.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args.log_level)
    try:
        return args.func(args)
    except DegradationBudgetError as exc:
        logger.error("%s", exc)
        return EXIT_DEGRADED_OVER_BUDGET
    except InputError as exc:
        logger.error("%s", exc)
        return EXIT_INPUT_ERROR
    except ReproError as exc:
        logger.error("internal fault: %s", exc)
        return EXIT_INTERNAL_FAULT


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
