"""Levelized worst-case waveform propagation (one STA pass).

Implements the breadth-first propagation of Section 4 with the per-arc
coupling decisions of Sections 2 and 5.  One :class:`Propagator` instance
serves all five analysis modes; the window-based modes (one-step,
iterative) perform the extra best-case calculation per arc described in
the paper's pseudo-code and decide each neighbour's coupling treatment by
comparing the aggressor's quiescent time with the victim's earliest
possible activity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.circuit.netlist import Cell, Circuit, Pin
from repro.core.graph import Provenance, TimingState, evaluation_order
from repro.core.modes import AnalysisMode, ClockAggressorModel, StaConfig, WindowCheck
from repro.flow.design import Design
from repro.waveform.coupling import CouplingLoad, CouplingTreatment, aggregate_load
from repro.waveform.gatedelay import GateDelayCalculator
from repro.waveform.pwl import FALLING, RISING, opposite
from repro.waveform.ramp import RampEvent, merge_worst


@dataclass
class EndpointArrival:
    """Worst arrival of one transition at a capture point."""

    endpoint: str
    direction: str
    event: RampEvent


@dataclass
class PassResult:
    """Outcome of one propagation pass."""

    state: TimingState
    arrivals: list[EndpointArrival] = field(default_factory=list)
    longest_delay: float = 0.0
    critical_endpoint: str = ""
    critical_direction: str = ""
    waveform_evaluations: int = 0
    arcs_processed: int = 0
    coupled_arcs: int = 0

    def arrival_map(self) -> dict[tuple[str, str], float]:
        return {(a.endpoint, a.direction): a.event.t_cross for a in self.arrivals}


def ideal_ramp_event(
    direction: str,
    t_start: float,
    transition: float,
    vdd: float,
    v_th: float,
) -> RampEvent:
    """Ramp event of an ideal rail-to-rail ramp starting at ``t_start``.

    By symmetry the threshold crossings land at the same offsets for both
    directions: the near-start threshold at ``transition * v_th / vdd``
    and the near-end one at ``transition * (vdd - v_th) / vdd``.
    """
    return RampEvent(
        direction=direction,
        t_cross=t_start + 0.5 * transition,
        transition=transition,
        t_early=t_start + transition * v_th / vdd,
        t_late=t_start + transition * (vdd - v_th) / vdd,
    )


class Propagator:
    """Runs single STA passes over a prepared design."""

    def __init__(
        self,
        design: Design,
        config: StaConfig,
        calculator: GateDelayCalculator | None = None,
    ):
        self.design = design
        self.config = config
        self.calculator = (
            calculator
            if calculator is not None
            else GateDelayCalculator(process=design.process)
        )
        self.order = evaluation_order(design.circuit)
        self._clock_nets = {
            name for name, net in design.circuit.nets.items() if net.is_clock
        }

    # -- pass driver ---------------------------------------------------------

    def run_pass(
        self,
        prev_windows: dict[tuple[str, str], tuple[float, float]] | None = None,
        recalc_cells: set[str] | None = None,
        prev_state: TimingState | None = None,
    ) -> PassResult:
        """One full breadth-first propagation.

        ``prev_windows`` supplies stored per-net activity windows
        (quiescent times and earliest activities) from the previous
        iterative pass; ``recalc_cells`` (Esperance) restricts waveform
        recalculation to the given cells, all others copy their previous
        events from ``prev_state``.
        """
        state = TimingState()
        result = PassResult(state=state)
        self._init_sources(state)

        for cell in self.order:
            out_net = cell.output_pin.net
            if out_net is None:
                continue
            if (
                recalc_cells is not None
                and cell.name not in recalc_cells
                and prev_state is not None
                and out_net.name in prev_state.processed
            ):
                state.events[out_net.name] = dict(prev_state.events[out_net.name])
                for direction in (RISING, FALLING):
                    prov = prev_state.provenance.get((out_net.name, direction))
                    if prov is not None:
                        state.provenance[(out_net.name, direction)] = prov
                state.processed.add(out_net.name)
                continue
            if cell.is_sequential:
                self._process_flip_flop(cell, state, prev_windows, result)
            else:
                self._process_gate(cell, state, prev_windows, result)
            state.processed.add(out_net.name)

        self._collect_arrivals(state, result)
        return result

    # -- sources ---------------------------------------------------------------

    def _init_sources(self, state: TimingState) -> None:
        process = self.design.process
        tt = self.config.input_transition
        circuit = self.design.circuit
        for port in circuit.inputs.values():
            net = port.net
            if net is None:
                continue
            slot = state.ensure_net(net.name)
            if net.is_clock:
                # Launch edge only: the clock rises at t = 0.
                slot[RISING] = ideal_ramp_event(
                    RISING, 0.0, tt, process.vdd, process.v_th_model
                )
            else:
                # Data inputs may make either transition at t = 0.
                for direction in (RISING, FALLING):
                    slot[direction] = ideal_ramp_event(
                        direction, 0.0, tt, process.vdd, process.v_th_model
                    )
            state.processed.add(net.name)

    # -- cell processing ---------------------------------------------------------

    def _process_gate(
        self,
        cell: Cell,
        state: TimingState,
        prev_windows: dict[tuple[str, str], tuple[float, float]] | None,
        result: PassResult,
    ) -> None:
        out_net = cell.output_pin.net
        out_slot = state.ensure_net(out_net.name)
        for pin in cell.input_pins:
            in_net = pin.net
            if in_net is None:
                continue
            for direction in (RISING, FALLING):
                event = state.event(in_net.name, direction)
                if event is None:
                    continue
                arrival = self._arrival_at_pin(event, in_net.name, pin.full_name)
                out_event, coupled = self._compute_output_event(
                    cell, pin.name, arrival, out_net.name, state, prev_windows, result
                )
                self._merge_output(
                    out_slot,
                    out_event,
                    state,
                    out_net.name,
                    Provenance(
                        cell=cell.name,
                        in_pin=pin.name,
                        in_net=in_net.name,
                        in_direction=direction,
                        coupled=coupled,
                        c_active=0.0,
                    ),
                )

    def _process_flip_flop(
        self,
        cell: Cell,
        state: TimingState,
        prev_windows: dict[tuple[str, str], tuple[float, float]] | None,
        result: PassResult,
    ) -> None:
        """Launch both Q transitions off the clock arrival at this cell."""
        process = self.design.process
        out_net = cell.output_pin.net
        out_slot = state.ensure_net(out_net.name)
        clk_pin = cell.pins["CLK"]
        clk_net = clk_pin.net

        clk_event = None
        if clk_net is not None:
            clk_event = state.event(clk_net.name, RISING) or state.event(
                clk_net.name, FALLING
            )
        if clk_event is not None and clk_net is not None:
            clk_arrival = self._arrival_at_pin(
                clk_event, clk_net.name, clk_pin.full_name
            )
        else:
            clk_arrival = ideal_ramp_event(
                RISING, 0.0, self.config.input_transition, process.vdd, process.v_th_model
            )

        launch_cross = clk_arrival.t_cross + cell.ctype.clk_to_q
        for out_direction in (RISING, FALLING):
            internal = ideal_ramp_event(
                opposite(out_direction),
                launch_cross - 0.5 * clk_arrival.transition,
                clk_arrival.transition,
                process.vdd,
                process.v_th_model,
            )
            out_event, coupled = self._compute_output_event(
                cell, "A", internal, out_net.name, state, prev_windows, result
            )
            self._merge_output(
                out_slot,
                out_event,
                state,
                out_net.name,
                Provenance(
                    cell=cell.name,
                    in_pin="CLK",
                    in_net=clk_net.name if clk_net is not None else "",
                    in_direction=clk_arrival.direction,
                    coupled=coupled,
                    c_active=0.0,
                ),
            )

    # -- the coupling decision (Sections 2 and 5) ---------------------------------

    def _compute_output_event(
        self,
        cell: Cell,
        pin_name: str,
        arrival: RampEvent,
        out_net_name: str,
        state: TimingState,
        prev_windows: dict[tuple[str, str], tuple[float, float]] | None,
        result: PassResult,
    ) -> tuple[RampEvent, bool]:
        load = self.design.loads[out_net_name]
        mode = self.config.mode
        result.arcs_processed += 1

        if not mode.is_window_based or not load.couplings:
            if mode.is_window_based:
                # No neighbours: nothing to decide, plain grounded load.
                coupling_load = CouplingLoad(c_ground=load.c_fixed)
            else:
                coupling_load = self._fixed_load(load, mode)
            result.waveform_evaluations += 1
            event = self.calculator.compute_arc(cell.ctype, pin_name, arrival, coupling_load)
            return event, coupling_load.has_active_coupling

        # One-step / iterative: best-case calculation first ("w_bcs :=
        # calculate waveform for best-case, i.e. all adjacent wires are
        # quiet; t_bcs := time when w_bcs reaches V_th").
        best_load = CouplingLoad(
            c_ground=load.c_fixed + load.c_coupling_total, c_couple_active=0.0
        )
        result.waveform_evaluations += 1
        best_event = self.calculator.compute_arc(cell.ctype, pin_name, arrival, best_load)
        t_bcs = best_event.t_early

        out_direction = best_event.direction
        aggressor_direction = opposite(out_direction)
        guard = self.config.guard

        # OVERLAP extension: bound the victim's latest possible completion
        # with the all-active calculation (monotone in the active set, so
        # valid for every subset the decision below may choose).
        t_victim_late = float("inf")
        if self.config.window_check is WindowCheck.OVERLAP:
            worst_load = CouplingLoad(
                c_ground=load.c_fixed, c_couple_active=load.c_coupling_total
            )
            result.waveform_evaluations += 1
            worst_event = self.calculator.compute_arc(
                cell.ctype, pin_name, arrival, worst_load
            )
            t_victim_late = worst_event.t_late

        treatments: list[tuple[float, CouplingTreatment]] = []
        any_active = False
        for other, cap in load.couplings.items():
            t_agg_early, t_agg_quiet = self._aggressor_window(
                other, aggressor_direction, state, prev_windows
            )
            may_couple = t_agg_quiet > t_bcs - guard
            if may_couple and t_agg_early >= t_victim_late + guard:
                # Aggressor can only fire after the victim has certainly
                # completed: no overlap.
                may_couple = False
            if may_couple:
                treatments.append((cap, CouplingTreatment.ACTIVE))
                any_active = True
            else:
                treatments.append((cap, CouplingTreatment.GROUNDED))

        if not any_active:
            return best_event, False

        final_load = aggregate_load(load.c_fixed, treatments)
        result.waveform_evaluations += 1
        result.coupled_arcs += 1
        event = self.calculator.compute_arc(cell.ctype, pin_name, arrival, final_load)
        return event, True

    def _fixed_load(self, load, mode: AnalysisMode) -> CouplingLoad:
        c_c = load.c_coupling_total
        if mode is AnalysisMode.BEST_CASE:
            return CouplingLoad(c_ground=load.c_fixed + c_c)
        if mode is AnalysisMode.STATIC_DOUBLED:
            return CouplingLoad(c_ground=load.c_fixed + 2.0 * c_c)
        if mode is AnalysisMode.WORST_CASE:
            return CouplingLoad(c_ground=load.c_fixed, c_couple_active=c_c)
        raise ValueError(f"mode {mode} has no fixed coupling treatment")

    def _aggressor_window(
        self,
        net_name: str,
        direction: str,
        state: TimingState,
        prev_windows: dict[tuple[str, str], tuple[float, float]] | None,
    ) -> tuple[float, float]:
        """The aggressor's possible activity window ``(t_early, t_quiet)``
        for ``direction`` transitions.  ``(-inf, +inf)`` means "unknown --
        must assume coupling"; ``(+inf, -inf)`` is the empty window (the
        net never makes that transition)."""
        if (
            net_name in self._clock_nets
            and self.config.clock_model is ClockAggressorModel.ALWAYS
        ):
            return float("-inf"), float("inf")
        if net_name in state.processed:
            event = state.event(net_name, direction)
            if event is None:
                return float("inf"), float("-inf")
            return event.t_early, event.t_late
        if prev_windows is not None:
            return prev_windows.get(
                (net_name, direction), (float("inf"), float("-inf"))
            )
        return float("-inf"), float("inf")

    # -- helpers -------------------------------------------------------------------

    def _arrival_at_pin(self, event: RampEvent, net_name: str, terminal: str) -> RampEvent:
        """Shift a driver-output event to a sink terminal: Elmore wire
        delay plus slew degradation.

        The transition degrades by linear addition of the wire's own
        transition scale (``k * T_elmore``), not the popular quadrature
        (PERI) form: linear addition upper-bounds the RC-filtered sink
        slew, which the worst-case analysis needs -- quadrature measurably
        under-estimates the slow exponential tail on long stretched wires
        and can let the simulation beat the bound.
        """
        elmore = self.design.loads[net_name].sink_elmore.get(terminal, 0.0)
        if elmore <= 0.0:
            return event
        shifted = event.shifted(elmore)
        k = self.config.slew_degradation_factor
        degraded = event.transition + k * elmore
        return shifted.with_transition(degraded)

    def _merge_output(
        self,
        out_slot: dict[str, RampEvent | None],
        out_event: RampEvent,
        state: TimingState,
        out_net_name: str,
        provenance: Provenance,
    ) -> None:
        direction = out_event.direction
        current = out_slot[direction]
        merged = merge_worst(current, out_event)
        out_slot[direction] = merged
        if current is None or out_event.t_cross > current.t_cross:
            state.provenance[(out_net_name, direction)] = provenance

    def _collect_arrivals(self, state: TimingState, result: PassResult) -> None:
        for endpoint in self.design.circuit.timing_endpoints():
            net = endpoint.net
            if net is None:
                continue
            terminal = endpoint.full_name if isinstance(endpoint, Pin) else endpoint.name
            for direction in (RISING, FALLING):
                event = state.event(net.name, direction)
                if event is None:
                    continue
                arrival = self._arrival_at_pin(event, net.name, terminal)
                result.arrivals.append(
                    EndpointArrival(endpoint=terminal, direction=direction, event=arrival)
                )
                if arrival.t_cross > result.longest_delay:
                    result.longest_delay = arrival.t_cross
                    result.critical_endpoint = terminal
                    result.critical_direction = direction
