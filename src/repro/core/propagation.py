"""Levelized worst-case waveform propagation (one STA pass).

Implements the breadth-first propagation of Section 4 with the per-arc
coupling decisions of Sections 2 and 5.  One :class:`Propagator` instance
serves all five analysis modes; the window-based modes (one-step,
iterative) perform the extra best-case calculation per arc described in
the paper's pseudo-code and decide each neighbour's coupling treatment by
comparing the aggressor's quiescent time with the victim's earliest
possible activity.

Between iterative passes the propagator is additionally *delta-driven*
(``StaConfig.incremental``): it keeps a per-arc memo of the last pass's
solve-relevant inputs -- the arrival's direction and transition, and the
decided coupling load -- together with the *origin-free relative*
results (:class:`~repro.waveform.gatedelay.ArcResult`).  An arc whose
inputs are unchanged (compared with exact float equality, not a
tolerance) re-anchors the memoized relative waveform at the current
arrival's time origin instead of re-solving; because the full path would
hit the identical quantized cache entry and shift it by the identical
origin, the reused event is bit-for-bit what a fresh solve would return.
Crucially the arrival's *crossing time* is not part of the fingerprint
-- it only chooses the origin -- so an arc whose arrival merely shifted
stays clean, and dirtiness propagates only through genuine shape
changes: an input transition that moved, or a coupling decision that
flipped because an aggressor window shifted, forces a fresh solve, which
in turn may dirty arcs downstream and across coupling edges.  The cheap
parts of the pass (task gathering, window comparisons, merging) always
run in full, so the coupling *decisions* are re-derived every pass from
current windows; only the expensive waveform evaluations are skipped.

The pass is *level-batched*: cells are processed one topological level
at a time (:func:`repro.core.graph.evaluation_levels`).  All waveform
calculations that do not depend on other nets' timing (the fixed loads
of the non-window modes; the best-case and, under OVERLAP, the
all-active calculation of the window-based modes) are gathered for the
whole level up front; the window-based coupling decisions then run in
*coupling waves* -- cells of a level only wait on earlier-ordered cells
of the same level whose output nets couple to theirs, so a net's window
is exactly as "calculated" as it was under the sequential walk, and
mutually coupled neighbours keep their asymmetric one-sees-the-other
treatment.  This makes the per-level arc work almost embarrassingly
parallel, which the batch engine (``StaConfig.engine = Engine.BATCH``)
exploits: each phase's distinct electrical situations are primed into
the arc cache by one vectorized integration
(:meth:`GateDelayCalculator.prime_arcs`) before the per-arc bookkeeping
runs against a hot cache.  Both engines share every line of decision
logic -- the scalar engine simply skips the priming -- so their delays
agree to floating-point noise.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.circuit.netlist import Cell, Circuit, Pin
from repro.core.graph import Provenance, TimingState, evaluation_levels
from repro.core.columnar import DIRECTIONS, DIR_INDEX, compile_design
from repro.core.modes import (
    AnalysisMode,
    ClockAggressorModel,
    Engine,
    SolverTier,
    StaConfig,
    WindowCheck,
)
from repro.flow.design import Design
from repro.core.provenance import ProvenanceLedger
from repro.obs.metrics import SMALL_COUNT_BUCKETS
from repro.obs.telemetry import Observability
from repro.errors import EngineError
from repro.waveform.coupling import CouplingLoad, CouplingTreatment, aggregate_load
from repro.waveform.gatedelay import ArcRequest, ArcResult, GateDelayCalculator
from repro.waveform.pwl import FALLING, RISING, opposite
from repro.waveform.ramp import RampEvent, merge_worst

# The propagation phases, in execution order (timer and metric keys).
PASS_PHASES = (
    "gather",
    "base_waveforms",
    "coupling_decisions",
    "final_waveforms",
    "merge",
)


@dataclass
class EndpointArrival:
    """Worst arrival of one transition at a capture point."""

    endpoint: str
    direction: str
    event: RampEvent


@dataclass
class PassResult:
    """Outcome of one propagation pass."""

    state: TimingState
    arrivals: list[EndpointArrival] = field(default_factory=list)
    longest_delay: float = 0.0
    critical_endpoint: str = ""
    critical_direction: str = ""
    waveform_evaluations: int = 0
    arcs_processed: int = 0
    coupled_arcs: int = 0
    dirty_arcs: int = 0
    reused_arcs: int = 0
    cache_evaluations: int = 0
    cache_hits: int = 0
    cache_dedup_hits: int = 0
    cache_persisted_hits: int = 0
    phase_seconds: dict[str, float] = field(default_factory=dict)
    # Rows this pass appended to the propagator's provenance ledger
    # (0 when the ledger is disabled).
    provenance_rows: int = 0

    def arrival_map(self) -> dict[tuple[str, str], float]:
        return {(a.endpoint, a.direction): a.event.t_cross for a in self.arrivals}


def ideal_ramp_event(
    direction: str,
    t_start: float,
    transition: float,
    vdd: float,
    v_th: float,
) -> RampEvent:
    """Ramp event of an ideal rail-to-rail ramp starting at ``t_start``.

    By symmetry the threshold crossings land at the same offsets for both
    directions: the near-start threshold at ``transition * v_th / vdd``
    and the near-end one at ``transition * (vdd - v_th) / vdd``.
    """
    return RampEvent(
        direction=direction,
        t_cross=t_start + 0.5 * transition,
        transition=transition,
        t_early=t_start + transition * v_th / vdd,
        t_late=t_start + transition * (vdd - v_th) / vdd,
    )


# Decided coupling treatment of the non-window modes (the window-based
# modes decide per aggressor: "quiet" / "overlap").
_FIXED_COUPLING_KIND = {
    AnalysisMode.BEST_CASE: "grounded",
    AnalysisMode.STATIC_DOUBLED: "doubled",
    AnalysisMode.WORST_CASE: "all_active",
}


def _memo_prov(memo: "_ArcMemo") -> dict | None:
    """Provenance of a memo reuse: the stored solve's record with the
    origin rewritten to "memo"."""
    if memo.prov is None:
        return None
    return {**memo.prov, "origin": "memo"}


def _arrival_fp(event: RampEvent) -> tuple[str, float]:
    """The exact solve-relevant fingerprint of an arrival event.

    The arc calculation consumes the input event only through its
    direction and transition (the ramp the stage solver integrates) and
    its crossing time -- and the latter enters *only* as the time origin
    the origin-free relative result is shifted by
    (:meth:`~repro.waveform.gatedelay.ArcResult.to_event`).  The window
    markers ``t_early``/``t_late`` never enter at all; they only feed
    *other* arcs' coupling decisions, which are re-derived every pass
    anyway.  The memo therefore stores the *relative* results and
    fingerprints only ``(direction, transition)`` with exact float
    equality: an arc whose arrival merely shifted in time (the common
    case between iterative passes, where windows tighten while ramp
    shapes stabilize after the first pass) re-anchors the memoized
    relative waveform at the new origin -- bit-identical to what a fresh
    solve would return, because the unchanged quantized cache key maps to
    the same cached :class:`ArcResult`.
    """
    return (event.direction, event.transition)


@dataclass
class _ArcMemo:
    """Last-pass fingerprint and relative outputs of one timing arc.

    ``arrival_fp`` and ``final_load`` are the arc's *inputs* (compared
    with exact float equality); the :class:`ArcResult` values are the
    origin-free outputs the next pass may re-anchor and reuse when the
    inputs are unchanged.  ``final_load`` is the load the final result
    was actually solved with -- the decided aggregate for coupled arcs,
    the fixed/plain load for unwindowed ones, and ``None`` when the pass
    short-circuited to the best-case waveform.
    """

    arrival_fp: tuple[str, float]
    best: ArcResult | None
    worst: ArcResult | None
    final_load: CouplingLoad | None
    final: ArcResult
    coupled: bool
    # Whether every component above came from the exact (Newton) tier.
    # Screened-tier memos are refused when the arc's driver cell has
    # since been forced exact (slack refinement), so the re-solve
    # actually happens instead of replaying the screened bound.
    exact: bool = True
    # Calculator provenance of the final result (tier / origin /
    # escalation / signature); a reuse reports it with origin "memo".
    # None when the ledger was disabled when the memo was stored.
    prov: dict | None = None


@dataclass
class _ArcTask:
    """One timing arc of the current level, carried through the phases."""

    cell: Cell
    pin_name: str
    arrival: RampEvent
    out_net_name: str
    prov_pin: str
    prov_net: str
    prov_direction: str
    windowed: bool = False
    plain_load: CouplingLoad | None = None
    best_rel: ArcResult | None = None
    worst_rel: ArcResult | None = None
    best_event: RampEvent | None = None
    worst_event: RampEvent | None = None
    final_load: CouplingLoad | None = None
    final_rel: ArcResult | None = None
    final_event: RampEvent | None = None
    coupled: bool = False
    memo: _ArcMemo | None = None
    evaluated: bool = False
    # Screened solver tier: True when any component of this task's
    # result came from a screened (non-Newton) bound, either freshly or
    # through a reused non-exact memo.
    screened: bool = False
    # Provenance of the *final* result (see _ArcMemo.prov) and the
    # decided coupling treatment; populated only when the ledger is on.
    prov: dict | None = None
    coupling_kind: str = "none"
    aggressors_total: int = 0
    aggressors_active: int = 0

    @property
    def t_start(self) -> float:
        """Time origin the relative arc results are anchored at (the
        start of the arriving input ramp)."""
        return self.arrival.t_cross - 0.5 * self.arrival.transition


class Propagator:
    """Runs single STA passes over a prepared design."""

    def __init__(
        self,
        design: Design,
        config: StaConfig,
        calculator: GateDelayCalculator | None = None,
        obs: Observability | None = None,
    ):
        self.design = design
        self.config = config
        if obs is not None:
            self.obs = obs
        elif calculator is not None:
            # Share the calculator's registry so arc-cache and propagation
            # metrics land in one snapshot.
            self.obs = Observability.disabled()
            self.obs.metrics = calculator.metrics
        else:
            self.obs = Observability.disabled()
        self.calculator = (
            calculator
            if calculator is not None
            else GateDelayCalculator(
                process=design.process,
                engine=config.engine.value,
                workers=config.workers,
                metrics=self.obs.metrics,
            )
        )
        self.levels = evaluation_levels(design.circuit)
        self.order = [cell for level in self.levels for cell in level]
        self._clock_nets = {
            name for name, net in design.circuit.nets.items() if net.is_clock
        }
        # Delta-driven pass-to-pass memo: arc identity -> last inputs and
        # outputs (see _ArcMemo).  The identity triple is unique per arc
        # task: gates key by (cell, input pin, input direction); flip-flop
        # launch tasks share pin "A" but differ in arrival direction.
        self._memo: dict[tuple[str, str, str], _ArcMemo] = {}
        # Screened solver tier: driver cells forced to the exact tier
        # (the analyzer grows this set during slack refinement until the
        # near-critical cone is fully exact).
        self._screened = config.solver_tier is SolverTier.SCREENED
        self.exact_cells: set[str] = set()
        # Per-arc provenance ledger (columnar; one row per merged arc).
        # Pure annotation: delays are bit-identical with it on or off.
        self._provenance = config.provenance
        self.ledger = ProvenanceLedger()
        self._pass_count = 0
        metrics = self.obs.metrics
        self._c_phase = {
            phase: metrics.counter("propagation.phase_seconds", phase=phase)
            for phase in PASS_PHASES
        }
        self._c_passes = metrics.counter("propagation.passes")
        self._c_arcs = metrics.counter("propagation.arcs_processed")
        self._c_evals = metrics.counter("propagation.waveform_evaluations")
        self._c_coupled = metrics.counter("propagation.coupled_arcs")
        self._c_dirty = metrics.counter("propagation.dirty_arcs")
        self._c_reused = metrics.counter("propagation.reused_arcs")
        self._c_waves = metrics.counter("propagation.coupling_waves")
        self._h_waves = metrics.histogram(
            "propagation.waves_per_level", boundaries=SMALL_COUNT_BUCKETS
        )

    # -- session reuse -------------------------------------------------------

    def export_memo(self) -> dict[tuple[str, str, str], _ArcMemo]:
        """The delta-driven pass memo keyed by arc identity -- the
        exchange format of :meth:`warm_start_from`, shared by both cores
        (the columnar core materialises it from its memo columns)."""
        return self._memo

    @property
    def memo_arcs(self) -> int:
        """Number of arcs with a live delta-driven memo entry."""
        return len(self._memo)

    def warm_start_from(self, source: "Propagator") -> None:
        """Adopt another propagator's delta-driven pass memo (the what-if
        path of a persistent design session).

        Within one design the memo fingerprints only what a solve consumes
        beyond the arc's identity -- the arrival shape and the decided
        load -- because a cell's type and its output net's electrical view
        cannot change between passes.  Across designs they can, so an
        entry migrates only when its arc still exists, the driving cell
        kept its cell type, and the output net's :class:`NetLoad` (fixed
        load, coupling neighbours, sink Elmore delays) is exactly equal.
        Everything else starts dirty and is re-solved.  Changes upstream
        of a surviving arc are caught by the arrival fingerprint itself
        (a moved transition misses the memo), so migration preserves the
        incremental engine's guarantee: a reused arc is bit-identical to
        a fresh solve.
        """
        if not self.config.incremental:
            return
        cells = self.design.circuit.cells
        old_cells = source.design.circuit.cells
        loads = self.design.loads
        old_loads = source.design.loads
        adopted: dict[tuple[str, str, str], _ArcMemo] = {}
        for key, memo in source.export_memo().items():
            cell = cells.get(key[0])
            old_cell = old_cells.get(key[0])
            if cell is None or old_cell is None:
                continue
            if cell.ctype.name != old_cell.ctype.name:
                continue
            out_net = cell.output_pin.net
            old_net = old_cell.output_pin.net
            if out_net is None or old_net is None:
                continue
            if loads.get(out_net.name) != old_loads.get(old_net.name):
                continue
            adopted[key] = memo
        self._memo = adopted

    # -- pass driver ---------------------------------------------------------

    def run_pass(
        self,
        prev_windows: dict[tuple[str, str], tuple[float, float]] | None = None,
        recalc_cells: set[str] | None = None,
        prev_state: TimingState | None = None,
    ) -> PassResult:
        """One full level-synchronous propagation.

        ``prev_windows`` supplies stored per-net activity windows
        (quiescent times and earliest activities) from the previous
        iterative pass; ``recalc_cells`` (Esperance) restricts waveform
        recalculation to the given cells, all others copy their previous
        events from ``prev_state``.
        """
        state = TimingState()
        result = PassResult(state=state)
        eval_before = self.calculator.evaluations
        hits_before = self.calculator.cache_hits
        dedup_before = self.calculator.dedup_hits
        persisted_before = self.calculator.persisted_hits
        ledger_before = len(self.ledger)
        self._pass_count += 1
        timers = {phase: 0.0 for phase in PASS_PHASES}
        tracer = self.obs.tracer

        with tracer.span(
            "sta.pass",
            mode=self.config.mode.value,
            engine=self.config.engine.value,
            incremental=recalc_cells is not None,
        ) as pass_span:
            self._init_sources(state)
            for level_index, level in enumerate(self.levels):
                with tracer.span(
                    "sta.level", index=level_index, cells=len(level)
                ) as level_span:
                    t0 = time.perf_counter()
                    tasks: list[_ArcTask] = []
                    tasks_of: dict[str, list[_ArcTask]] = {}
                    computed_cells: list[Cell] = []
                    for cell in level:
                        out_net = cell.output_pin.net
                        if out_net is None:
                            continue
                        if (
                            recalc_cells is not None
                            and cell.name not in recalc_cells
                            and prev_state is not None
                            and out_net.name in prev_state.processed
                        ):
                            state.events[out_net.name] = dict(
                                prev_state.events[out_net.name]
                            )
                            for direction in (RISING, FALLING):
                                prov = prev_state.provenance.get(
                                    (out_net.name, direction)
                                )
                                if prov is not None:
                                    state.provenance[(out_net.name, direction)] = prov
                                row = prev_state.arc_prov.get(
                                    (out_net.name, direction)
                                )
                                if row is not None:
                                    state.arc_prov[(out_net.name, direction)] = row
                            state.processed.add(out_net.name)
                            continue
                        state.ensure_net(out_net.name)
                        if cell.is_sequential:
                            cell_tasks = self._flip_flop_tasks(cell, state)
                        else:
                            cell_tasks = self._gate_tasks(cell, state)
                        if not cell_tasks:
                            # No launch events reach this cell: its output stays
                            # quiet this pass, which downstream decisions may use.
                            state.processed.add(out_net.name)
                            continue
                        computed_cells.append(cell)
                        tasks_of[cell.name] = cell_tasks
                        tasks.extend(cell_tasks)
                    timers["gather"] += time.perf_counter() - t0

                    if not tasks:
                        continue

                    t0 = time.perf_counter()
                    with tracer.span("phase.base_waveforms", tasks=len(tasks)):
                        self._phase_base_waveforms(tasks, result)
                    timers["base_waveforms"] += time.perf_counter() - t0

                    waves = self._coupling_waves(computed_cells)
                    self._c_waves.inc(len(waves))
                    self._h_waves.observe(len(waves))
                    level_span.set(tasks=len(tasks), waves=len(waves))
                    for wave_index, wave in enumerate(waves):
                        wave_tasks = [
                            task for cell in wave for task in tasks_of[cell.name]
                        ]
                        t0 = time.perf_counter()
                        with tracer.span(
                            "phase.coupling_decisions",
                            wave=wave_index,
                            tasks=len(wave_tasks),
                        ):
                            self._phase_decide_coupling(
                                wave_tasks, state, prev_windows, result
                            )
                        timers["coupling_decisions"] += time.perf_counter() - t0

                        t0 = time.perf_counter()
                        with tracer.span("phase.final_waveforms", wave=wave_index):
                            self._phase_final_waveforms(wave_tasks, result)
                        timers["final_waveforms"] += time.perf_counter() - t0

                        t0 = time.perf_counter()
                        for task in wave_tasks:
                            row_id = (
                                self._ledger_row(task) if self._provenance else None
                            )
                            self._merge_output(
                                state.events[task.out_net_name],
                                task.final_event,
                                state,
                                task.out_net_name,
                                Provenance(
                                    cell=task.cell.name,
                                    in_pin=task.prov_pin,
                                    in_net=task.prov_net,
                                    in_direction=task.prov_direction,
                                    coupled=task.coupled,
                                    c_active=0.0,
                                ),
                                row_id,
                            )
                            if task.evaluated:
                                result.dirty_arcs += 1
                            else:
                                result.reused_arcs += 1
                            if self.config.incremental:
                                self._memo[self._memo_key(task)] = _ArcMemo(
                                    arrival_fp=_arrival_fp(task.arrival),
                                    best=task.best_rel,
                                    worst=task.worst_rel,
                                    final_load=(
                                        task.final_load
                                        if task.final_load is not None
                                        else task.plain_load
                                    ),
                                    final=task.final_rel,
                                    coupled=task.coupled,
                                    exact=not task.screened,
                                    prov=task.prov,
                                )
                        # Wave barrier: these events now count as calculated
                        # for the later waves' and levels' decisions.
                        for cell in wave:
                            state.processed.add(cell.output_pin.net.name)
                        timers["merge"] += time.perf_counter() - t0

            self._collect_arrivals(state, result)
            pass_span.set(
                arcs=result.arcs_processed,
                evaluations=result.waveform_evaluations,
                coupled_arcs=result.coupled_arcs,
                longest_delay_ns=result.longest_delay * 1e9,
            )

        result.cache_evaluations = self.calculator.evaluations - eval_before
        result.cache_hits = self.calculator.cache_hits - hits_before
        result.cache_dedup_hits = self.calculator.dedup_hits - dedup_before
        result.cache_persisted_hits = self.calculator.persisted_hits - persisted_before
        result.provenance_rows = len(self.ledger) - ledger_before
        result.phase_seconds = timers
        self._c_passes.inc()
        self._c_arcs.inc(result.arcs_processed)
        self._c_evals.inc(result.waveform_evaluations)
        self._c_coupled.inc(result.coupled_arcs)
        self._c_dirty.inc(result.dirty_arcs)
        self._c_reused.inc(result.reused_arcs)
        for phase, seconds in timers.items():
            self._c_phase[phase].inc(seconds)
        return result

    # -- sources ---------------------------------------------------------------

    def _init_sources(self, state: TimingState) -> None:
        process = self.design.process
        tt = self.config.input_transition
        circuit = self.design.circuit
        for port in circuit.inputs.values():
            net = port.net
            if net is None:
                continue
            slot = state.ensure_net(net.name)
            if net.is_clock:
                # Launch edge only: the clock rises at t = 0.
                slot[RISING] = ideal_ramp_event(
                    RISING, 0.0, tt, process.vdd, process.v_th_model
                )
            else:
                # Data inputs may make either transition at t = 0.
                for direction in (RISING, FALLING):
                    slot[direction] = ideal_ramp_event(
                        direction, 0.0, tt, process.vdd, process.v_th_model
                    )
            state.processed.add(net.name)

    # -- coupling waves ----------------------------------------------------------

    def _coupling_waves(self, cells: list[Cell]) -> list[list[Cell]]:
        """Split one level's cells into decision waves.

        A cell must wait for an earlier-ordered cell of the same level
        only when that cell drives a net coupled to its own output --
        otherwise the two share no timing information at all and can be
        decided together.  Processing the waves in order reproduces the
        sequential walk's asymmetric visibility (for every coupled pair
        driven in one level, exactly one side sees the other's freshly
        calculated window) while keeping each wave batchable.  The
        non-window modes never read windows: everything is one wave.
        """
        if not self.config.mode.is_window_based or len(cells) <= 1:
            return [cells] if cells else []
        driver_wave: dict[str, int] = {}
        waves: list[list[Cell]] = []
        for cell in cells:
            out_net = cell.output_pin.net
            load = self.design.loads.get(out_net.name)
            wave = 0
            if load is not None:
                for other in load.couplings:
                    earlier = driver_wave.get(other)
                    if earlier is not None:
                        wave = max(wave, earlier + 1)
            driver_wave[out_net.name] = wave
            if wave == len(waves):
                waves.append([])
            waves[wave].append(cell)
        return waves

    # -- task gathering ---------------------------------------------------------

    def _gate_tasks(self, cell: Cell, state: TimingState) -> list[_ArcTask]:
        out_net = cell.output_pin.net
        tasks: list[_ArcTask] = []
        for pin in cell.input_pins:
            in_net = pin.net
            if in_net is None:
                continue
            for direction in (RISING, FALLING):
                event = state.event(in_net.name, direction)
                if event is None:
                    continue
                arrival = self._arrival_at_pin(event, in_net.name, pin.full_name)
                tasks.append(
                    _ArcTask(
                        cell=cell,
                        pin_name=pin.name,
                        arrival=arrival,
                        out_net_name=out_net.name,
                        prov_pin=pin.name,
                        prov_net=in_net.name,
                        prov_direction=direction,
                    )
                )
        return tasks

    def _flip_flop_tasks(self, cell: Cell, state: TimingState) -> list[_ArcTask]:
        """Launch both Q transitions off the clock arrival at this cell."""
        process = self.design.process
        out_net = cell.output_pin.net
        clk_pin = cell.pins["CLK"]
        clk_net = clk_pin.net

        clk_event = None
        if clk_net is not None:
            clk_event = state.event(clk_net.name, RISING) or state.event(
                clk_net.name, FALLING
            )
        if clk_event is not None and clk_net is not None:
            clk_arrival = self._arrival_at_pin(
                clk_event, clk_net.name, clk_pin.full_name
            )
        else:
            clk_arrival = ideal_ramp_event(
                RISING, 0.0, self.config.input_transition, process.vdd, process.v_th_model
            )

        launch_cross = clk_arrival.t_cross + cell.ctype.clk_to_q
        tasks: list[_ArcTask] = []
        for out_direction in (RISING, FALLING):
            internal = ideal_ramp_event(
                opposite(out_direction),
                launch_cross - 0.5 * clk_arrival.transition,
                clk_arrival.transition,
                process.vdd,
                process.v_th_model,
            )
            tasks.append(
                _ArcTask(
                    cell=cell,
                    pin_name="A",
                    arrival=internal,
                    out_net_name=out_net.name,
                    prov_pin="CLK",
                    prov_net=clk_net.name if clk_net is not None else "",
                    prov_direction=clk_arrival.direction,
                )
            )
        return tasks

    # -- phase A: state-independent base waveforms ------------------------------

    @staticmethod
    def _memo_key(task: _ArcTask) -> tuple[str, str, str]:
        return (task.cell.name, task.pin_name, task.arrival.direction)

    def _phase_base_waveforms(self, tasks: list[_ArcTask], result: PassResult) -> None:
        """Compute every event that does not depend on other nets' timing:
        the fixed-treatment loads of the non-window modes, and the
        best-case (plus, under OVERLAP, the all-active) calculation of the
        window-based modes.  With the batch engine all distinct situations
        are primed in one vectorized solve first.

        Delta-driven reuse: an arc whose arrival matches the previous
        pass's fingerprint re-anchors the memoized relative best/worst
        (and, for unwindowed arcs solved with the same load, final)
        results at the current time origin -- those depend on nothing
        else, so reuse is exact.
        """
        mode = self.config.mode
        overlap = self.config.window_check is WindowCheck.OVERLAP
        incremental = self.config.incremental
        requests: list[ArcRequest] = []
        for task in tasks:
            result.arcs_processed += 1
            load = self.design.loads[task.out_net_name]
            if incremental:
                memo = self._memo.get(self._memo_key(task))
                if (
                    memo is not None
                    and memo.arrival_fp == _arrival_fp(task.arrival)
                    # A screened memo must not satisfy a cell that the
                    # slack refinement has since forced exact.
                    and (memo.exact or task.cell.name not in self.exact_cells)
                ):
                    task.memo = memo
            if not mode.is_window_based or not load.couplings:
                if mode.is_window_based:
                    # No neighbours: nothing to decide, plain grounded load.
                    task.plain_load = CouplingLoad(c_ground=load.c_fixed)
                else:
                    task.plain_load = self._fixed_load(load, mode)
                if self._provenance:
                    task.coupling_kind = _FIXED_COUPLING_KIND.get(mode, "none")
                    task.aggressors_total = len(load.couplings)
                    if mode is AnalysisMode.WORST_CASE:
                        task.aggressors_active = task.aggressors_total
                if task.memo is not None and task.memo.final_load == task.plain_load:
                    task.final_rel = task.memo.final
                    task.final_event = task.final_rel.to_event(task.t_start)
                    task.coupled = task.memo.coupled
                    task.screened = not task.memo.exact
                    if self._provenance:
                        task.prov = _memo_prov(task.memo)
                else:
                    requests.append(self._request(task, task.plain_load))
                continue
            task.windowed = True
            if task.memo is not None and task.memo.best is not None:
                if not overlap or task.memo.worst is not None:
                    task.best_rel = task.memo.best
                    task.best_event = task.best_rel.to_event(task.t_start)
                    if task.memo.worst is not None:
                        task.worst_rel = task.memo.worst
                        task.worst_event = task.worst_rel.to_event(task.t_start)
                    task.screened = not task.memo.exact
                    if self._provenance:
                        # Tentative: overwritten if the coupling decision
                        # forces a fresh final solve.
                        task.prov = _memo_prov(task.memo)
                    continue
            # One-step / iterative: best-case calculation first ("w_bcs :=
            # calculate waveform for best-case, i.e. all adjacent wires
            # are quiet; t_bcs := time when w_bcs reaches V_th").
            requests.append(
                self._request(
                    task,
                    CouplingLoad(
                        c_ground=load.c_fixed + load.c_coupling_total,
                        c_couple_active=0.0,
                    ),
                )
            )
            if overlap:
                requests.append(
                    self._request(
                        task,
                        CouplingLoad(
                            c_ground=load.c_fixed,
                            c_couple_active=load.c_coupling_total,
                        ),
                    )
                )
        self._prime(requests)
        for task in tasks:
            load = self.design.loads[task.out_net_name]
            if not task.windowed:
                if task.final_event is not None:
                    continue  # reused from the memo above
                result.waveform_evaluations += 1
                task.evaluated = True
                task.final_rel = self._compute_rel(task, task.plain_load)
                task.final_event = task.final_rel.to_event(task.t_start)
                task.coupled = task.plain_load.has_active_coupling
                if self._provenance:
                    task.prov = self._last_prov()
                continue
            if task.best_event is not None:
                continue  # reused from the memo above
            best_load = CouplingLoad(
                c_ground=load.c_fixed + load.c_coupling_total, c_couple_active=0.0
            )
            result.waveform_evaluations += 1
            task.evaluated = True
            task.best_rel = self._compute_rel(task, best_load)
            task.best_event = task.best_rel.to_event(task.t_start)
            if self._provenance:
                # Tentative (the best-case solve): overwritten when the
                # coupling decision forces a separate final solve.
                task.prov = self._last_prov()
            if overlap:
                worst_load = CouplingLoad(
                    c_ground=load.c_fixed, c_couple_active=load.c_coupling_total
                )
                result.waveform_evaluations += 1
                task.worst_rel = self._compute_rel(task, worst_load)
                task.worst_event = task.worst_rel.to_event(task.t_start)

    # -- phase B: the coupling decision (Sections 2 and 5) ----------------------

    def _phase_decide_coupling(
        self,
        tasks: list[_ArcTask],
        state: TimingState,
        prev_windows: dict[tuple[str, str], tuple[float, float]] | None,
        result: PassResult,
    ) -> None:
        """Per arc, decide each neighbour's treatment by comparing its
        activity window against the victim's best-case earliest activity
        (and, under OVERLAP, its all-active latest completion)."""
        guard = self.config.guard
        for task in tasks:
            if not task.windowed:
                continue
            load = self.design.loads[task.out_net_name]
            t_bcs = task.best_event.t_early
            aggressor_direction = opposite(task.best_event.direction)
            # OVERLAP extension: bound the victim's latest possible
            # completion with the all-active calculation (monotone in the
            # active set, so valid for every subset chosen below).
            t_victim_late = (
                task.worst_event.t_late if task.worst_event is not None else float("inf")
            )
            treatments: list[tuple[float, CouplingTreatment]] = []
            any_active = False
            for other, cap in load.couplings.items():
                t_agg_early, t_agg_quiet = self._aggressor_window(
                    other, aggressor_direction, state, prev_windows
                )
                may_couple = t_agg_quiet > t_bcs - guard
                if may_couple and t_agg_early >= t_victim_late + guard:
                    # Aggressor can only fire after the victim has
                    # certainly completed: no overlap.
                    may_couple = False
                if may_couple:
                    treatments.append((cap, CouplingTreatment.ACTIVE))
                    any_active = True
                else:
                    treatments.append((cap, CouplingTreatment.GROUNDED))
            if self._provenance:
                task.aggressors_total = len(load.couplings)
                task.aggressors_active = sum(
                    1 for _, t in treatments if t is CouplingTreatment.ACTIVE
                )
                task.coupling_kind = "overlap" if any_active else "quiet"
            if any_active:
                task.final_load = aggregate_load(load.c_fixed, treatments)
            else:
                task.final_rel = task.best_rel
                task.final_event = task.best_event
                task.coupled = False

    # -- phase C: decided final waveforms ---------------------------------------

    def _phase_final_waveforms(self, tasks: list[_ArcTask], result: PassResult) -> None:
        pending: list[_ArcTask] = []
        for task in tasks:
            if task.final_load is None:
                continue
            result.coupled_arcs += 1
            # Delta-driven reuse: same arrival shape (checked when the memo
            # was attached) and same decided load -> same relative waveform,
            # re-anchored at the current origin.
            if task.memo is not None and task.memo.final_load == task.final_load:
                task.final_rel = task.memo.final
                task.final_event = task.final_rel.to_event(task.t_start)
                task.coupled = True
                if not task.memo.exact:
                    task.screened = True
                if self._provenance:
                    task.prov = _memo_prov(task.memo)
                continue
            pending.append(task)
        if not pending:
            return
        self._prime([self._request(task, task.final_load) for task in pending])
        for task in pending:
            result.waveform_evaluations += 1
            task.evaluated = True
            task.final_rel = self._compute_rel(task, task.final_load)
            task.final_event = task.final_rel.to_event(task.t_start)
            task.coupled = True
            if self._provenance:
                task.prov = self._last_prov()

    # -- arc-engine helpers ------------------------------------------------------

    def _request(self, task: _ArcTask, load: CouplingLoad) -> ArcRequest:
        return ArcRequest(
            ctype=task.cell.ctype,
            pin=task.pin_name,
            input_direction=task.arrival.direction,
            input_transition=task.arrival.transition,
            load=load,
            force_exact=self._screened and task.cell.name in self.exact_cells,
        )

    def _prime(self, requests: list[ArcRequest]) -> None:
        """Charge the arc cache for the upcoming lookups (a no-op for the
        scalar engine, which solves lazily inside :meth:`_compute`)."""
        if self.config.engine is Engine.BATCH:
            self.calculator.prime_arcs(requests)

    def _last_prov(self) -> dict:
        """The calculator's provenance surfaces for the solve it just
        answered (captured immediately after a :meth:`_compute_rel`)."""
        calc = self.calculator
        return {
            "tier": calc.last_tier,
            "origin": calc.last_origin,
            "escalation": calc.last_escalation,
            "signature": calc.last_signature,
        }

    def _ledger_row(self, task: _ArcTask) -> int:
        """Append one merged arc's provenance row to the ledger."""
        prov = task.prov or {}
        if task.windowed:
            if (
                task.coupled
                and task.best_rel is not None
                and task.final_rel is not None
            ):
                delta = task.final_rel.t_cross - task.best_rel.t_cross
            else:
                delta = 0.0
        elif self.config.mode is AnalysisMode.BEST_CASE:
            delta = 0.0
        else:
            # static_doubled / worst_case solve no quiescent companion,
            # so there is no delta to report without an extra solve.
            delta = None
        return self.ledger.append(
            tier=prov.get("tier", "newton"),
            origin=prov.get("origin", "fresh"),
            escalation=prov.get("escalation"),
            signature=prov.get("signature", ""),
            coupling=task.coupling_kind,
            aggressors_total=task.aggressors_total,
            aggressors_active=task.aggressors_active,
            pass_index=self._pass_count,
            coupling_delta=delta,
        )

    def _compute_rel(self, task: _ArcTask, load: CouplingLoad) -> ArcResult:
        """The origin-free arc solve; callers anchor it via
        ``result.to_event(task.t_start)`` -- exactly what
        :meth:`GateDelayCalculator.compute_arc` does internally."""
        arc = self.calculator.compute_arc_relative(
            task.cell.ctype,
            task.pin_name,
            task.arrival.direction,
            task.arrival.transition,
            load,
            force_exact=self._screened and task.cell.name in self.exact_cells,
        )
        if self._screened and self.calculator.last_tier != "newton":
            task.screened = True
        return arc

    def _fixed_load(self, load, mode: AnalysisMode) -> CouplingLoad:
        c_c = load.c_coupling_total
        if mode is AnalysisMode.BEST_CASE:
            return CouplingLoad(c_ground=load.c_fixed + c_c)
        if mode is AnalysisMode.STATIC_DOUBLED:
            return CouplingLoad(c_ground=load.c_fixed + 2.0 * c_c)
        if mode is AnalysisMode.WORST_CASE:
            return CouplingLoad(c_ground=load.c_fixed, c_couple_active=c_c)
        raise EngineError(f"mode {mode} has no fixed coupling treatment")

    def _aggressor_window(
        self,
        net_name: str,
        direction: str,
        state: TimingState,
        prev_windows: dict[tuple[str, str], tuple[float, float]] | None,
    ) -> tuple[float, float]:
        """The aggressor's possible activity window ``(t_early, t_quiet)``
        for ``direction`` transitions.  ``(-inf, +inf)`` means "unknown --
        must assume coupling"; ``(+inf, -inf)`` is the empty window (the
        net never makes that transition)."""
        if (
            net_name in self._clock_nets
            and self.config.clock_model is ClockAggressorModel.ALWAYS
        ):
            return float("-inf"), float("inf")
        if net_name in state.processed:
            event = state.event(net_name, direction)
            if event is None:
                return float("inf"), float("-inf")
            return event.t_early, event.t_late
        if prev_windows is not None:
            return prev_windows.get(
                (net_name, direction), (float("inf"), float("-inf"))
            )
        return float("-inf"), float("inf")

    # -- helpers -------------------------------------------------------------------

    def _arrival_at_pin(self, event: RampEvent, net_name: str, terminal: str) -> RampEvent:
        """Shift a driver-output event to a sink terminal: Elmore wire
        delay plus slew degradation.

        The transition degrades by linear addition of the wire's own
        transition scale (``k * T_elmore``), not the popular quadrature
        (PERI) form: linear addition upper-bounds the RC-filtered sink
        slew, which the worst-case analysis needs -- quadrature measurably
        under-estimates the slow exponential tail on long stretched wires
        and can let the simulation beat the bound.
        """
        elmore = self.design.loads[net_name].sink_elmore.get(terminal, 0.0)
        if elmore <= 0.0:
            return event
        shifted = event.shifted(elmore)
        k = self.config.slew_degradation_factor
        degraded = event.transition + k * elmore
        return shifted.with_transition(degraded)

    def _merge_output(
        self,
        out_slot: dict[str, RampEvent | None],
        out_event: RampEvent,
        state: TimingState,
        out_net_name: str,
        provenance: Provenance,
        ledger_row: int | None = None,
    ) -> None:
        direction = out_event.direction
        current = out_slot[direction]
        merged = merge_worst(current, out_event)
        out_slot[direction] = merged
        if current is None or out_event.t_cross > current.t_cross:
            state.provenance[(out_net_name, direction)] = provenance
            if ledger_row is not None:
                state.arc_prov[(out_net_name, direction)] = ledger_row

    def _collect_arrivals(self, state, result: PassResult) -> None:
        for endpoint in self.design.circuit.timing_endpoints():
            net = endpoint.net
            if net is None:
                continue
            terminal = endpoint.full_name if isinstance(endpoint, Pin) else endpoint.name
            for direction in (RISING, FALLING):
                event = state.event(net.name, direction)
                if event is None:
                    continue
                arrival = self._arrival_at_pin(event, net.name, terminal)
                result.arrivals.append(
                    EndpointArrival(endpoint=terminal, direction=direction, event=arrival)
                )
                if arrival.t_cross > result.longest_delay:
                    result.longest_delay = arrival.t_cross
                    result.critical_endpoint = terminal
                    result.critical_direction = direction


class ColumnarPropagator(Propagator):
    """Column-backed propagation core (see :mod:`repro.core.columnar`).

    Runs the identical pass algorithm over the compiled design's dense
    id arrays: arrivals are gathered by one fancy-index per level slab,
    the delta-driven memo fingerprint compare is one vectorized exact
    equality over the slab, and the per-arc solves resolve pre-quantized
    canonical keys (:meth:`GateDelayCalculator.resolve_key`) computed by
    a bulk ceil instead of per-arc :class:`ArcRequest` objects.  Every
    decision, counter and float operation mirrors :class:`Propagator`
    line by line, so the exact tier is ``float.hex()``-identical to the
    object core in all five modes; only the bookkeeping around the
    numbers changed representation.
    """

    def __init__(
        self,
        design: Design,
        config: StaConfig,
        calculator: GateDelayCalculator | None = None,
        obs: Observability | None = None,
        compiled=None,
    ):
        from repro.core.columnar import compile_design

        super().__init__(design, config, calculator, obs)
        self.compiled = compiled if compiled is not None else compile_design(design)
        # Both sides derive from evaluation_levels(), so the compiled arc
        # table's level slabs line up with self.levels by construction.
        self.levels = self.compiled.levels
        self.order = self.compiled.cells
        self._init_columns()

    # -- static columns ------------------------------------------------------

    def _init_columns(self) -> None:
        cp = self.compiled
        config = self.config
        n = cp.n_arcs
        mode = config.mode
        wb = mode.is_window_based
        cf = cp.net_c_fixed[cp.arc_out_net]
        cc = cp.net_cc_total[cp.arc_out_net]
        # The plain (decision-free) load of each arc: the grounded load of
        # the window-based modes' no-neighbour arcs, or the mode's fixed
        # treatment (_fixed_load) otherwise.
        if wb or mode is AnalysisMode.BEST_CASE:
            plain_cg, plain_ca = cf + cc, np.zeros(n)
        elif mode is AnalysisMode.STATIC_DOUBLED:
            plain_cg, plain_ca = cf + 2.0 * cc, np.zeros(n)
        elif mode is AnalysisMode.WORST_CASE:
            plain_cg, plain_ca = cf.copy(), cc.copy()
        else:  # pragma: no cover - AnalysisMode is closed
            raise EngineError(f"mode {mode} has no fixed coupling treatment")
        self._s_windowed = wb & (cp.arc_n_coup > 0)
        self._s_plain_cg = plain_cg
        self._s_plain_ca = plain_ca
        self._s_plain_coupled = (plain_ca > 0.0).tolist()
        # Pre-quantized cache-key loads (python floats: the keys are
        # JSON-serialized by the persistent cache).  The vectorized ceil
        # is bit-identical to the scalar math.ceil path: the quotients
        # are small enough that the ceiling integer is exact in float64.
        grid = self.calculator.cap_grid

        def qcap(values: np.ndarray) -> list[float]:
            return (np.ceil(np.maximum(values, 0.0) / grid) * grid).tolist()

        self._qp_plain_p = qcap(plain_cg)
        self._qp_plain_a = qcap(plain_ca)
        self._qp_best_p = qcap(cf + cc)
        self._qp_worst_p = qcap(cf)
        self._qp_worst_a = qcap(cc)

        # Per-arc object/str columns the hot loops index by id.
        self._s_cell = [cp.cells[i] for i in cp.arc_cell.tolist()]
        self._s_pin = cp.arc_pin
        self._s_dir = [DIRECTIONS[i] for i in cp.arc_in_dir.tolist()]
        self._s_indir = cp.arc_in_dir.tolist()
        self._s_outd = (1 - cp.arc_in_dir).tolist()
        self._s_out = cp.arc_out_net.tolist()
        self._s_outname = [cp.net_names[i] for i in self._s_out]
        self._s_windowed_l = self._s_windowed.tolist()
        self._tokens: list[str | None] = [None] * n
        self._s_cfix = cp.net_c_fixed.tolist()
        self._coup_indptr = cp.coup_indptr.tolist()
        self._coup_net = cp.coup_net.tolist()
        self._coup_cap = cp.coup_cap.tolist()
        self._net_is_clock = cp.net_is_clock.tolist()

        # Ledger annotation columns.  Unwindowed arcs keep their static
        # values; the decision phase rewrites windowed entries each pass.
        plain_kind = _FIXED_COUPLING_KIND.get(mode, "none")
        self._a_kind = [plain_kind] * n
        self._s_aggt = cp.arc_n_coup.tolist()
        self._a_agga = (
            list(self._s_aggt)
            if mode is AnalysisMode.WORST_CASE
            else [0] * n
        )

        # Memo columns (the _ArcMemo dict of the object core).  Loads are
        # (c_ground, c_couple_active, c_couple_passive) triples; NaN
        # encodes "no load" (the windowed quiet short-circuit), which
        # correctly never compares equal to a real load.
        self._m_valid = np.zeros(n, dtype=bool)
        self._m_tt = np.zeros(n, dtype=np.float64)
        self._m_exact = np.zeros(n, dtype=bool)
        self._m_coupled = np.zeros(n, dtype=bool)
        self._m_has_best = np.zeros(n, dtype=bool)
        self._m_has_worst = np.zeros(n, dtype=bool)
        self._m_cg = np.full(n, np.nan)
        self._m_ca = np.full(n, np.nan)
        self._m_cp = np.full(n, np.nan)
        self._m_best: list[ArcResult | None] = [None] * n
        self._m_worst: list[ArcResult | None] = [None] * n
        self._m_final: list[ArcResult | None] = [None] * n
        self._m_prov: list[dict | None] = [None] * n

        # Per-level cell records: (cell, out net id, arc slab range, is_ff).
        self._lvl_cells: list[list[tuple[Cell, int, int, int, bool]]] = []
        for level in self.levels:
            records = []
            for cell in level:
                ci = cp.cell_id[cell.name]
                oi = int(cp.cell_out_net[ci])
                if oi < 0:
                    continue
                records.append(
                    (
                        cell,
                        oi,
                        int(cp.cell_arc_begin[ci]),
                        int(cp.cell_arc_end[ci]),
                        bool(cp.cell_is_ff[ci]),
                    )
                )
            self._lvl_cells.append(records)

    def _token(self, a: int) -> str:
        """The arc's interned stage-signature token, resolved lazily on
        first use so signature/alias metrics track actual demand exactly
        like the object core's per-request interning."""
        token = self._tokens[a]
        if token is None:
            token = self.calculator.signature(self._s_cell[a].ctype, self._s_pin[a])
            self._tokens[a] = token
        return token

    # -- session reuse -------------------------------------------------------

    @property
    def memo_arcs(self) -> int:
        return int(self._m_valid.sum())

    def export_memo(self) -> dict[tuple[str, str, str], _ArcMemo]:
        out: dict[tuple[str, str, str], _ArcMemo] = {}
        for a in np.nonzero(self._m_valid)[0].tolist():
            cg = float(self._m_cg[a])
            final_load = (
                None
                if math.isnan(cg)
                else CouplingLoad(cg, float(self._m_ca[a]), float(self._m_cp[a]))
            )
            out[(self._s_cell[a].name, self._s_pin[a], self._s_dir[a])] = _ArcMemo(
                arrival_fp=(self._s_dir[a], float(self._m_tt[a])),
                best=self._m_best[a],
                worst=self._m_worst[a],
                final_load=final_load,
                final=self._m_final[a],
                coupled=bool(self._m_coupled[a]),
                exact=bool(self._m_exact[a]),
                prov=self._m_prov[a],
            )
        return out

    def warm_start_from(self, source: "Propagator") -> None:
        """Adopt another propagator's memo into the memo columns, under
        the same electrical-identity checks as the object core."""
        if not self.config.incremental:
            return
        cells = self.design.circuit.cells
        old_cells = source.design.circuit.cells
        loads = self.design.loads
        old_loads = source.design.loads
        index = self.compiled.arc_key_index
        for key, memo in source.export_memo().items():
            cell = cells.get(key[0])
            old_cell = old_cells.get(key[0])
            if cell is None or old_cell is None:
                continue
            if cell.ctype.name != old_cell.ctype.name:
                continue
            out_net = cell.output_pin.net
            old_net = old_cell.output_pin.net
            if out_net is None or old_net is None:
                continue
            if loads.get(out_net.name) != old_loads.get(old_net.name):
                continue
            a = index.get(key)
            if a is None:
                continue
            self._m_valid[a] = True
            self._m_tt[a] = memo.arrival_fp[1]
            self._m_exact[a] = memo.exact
            self._m_coupled[a] = memo.coupled
            self._m_best[a] = memo.best
            self._m_has_best[a] = memo.best is not None
            self._m_worst[a] = memo.worst
            self._m_has_worst[a] = memo.worst is not None
            self._m_final[a] = memo.final
            self._m_prov[a] = memo.prov
            if memo.final_load is None:
                self._m_cg[a] = self._m_ca[a] = self._m_cp[a] = np.nan
            else:
                self._m_cg[a] = memo.final_load.c_ground
                self._m_ca[a] = memo.final_load.c_couple_active
                self._m_cp[a] = memo.final_load.c_couple_passive

    # -- pass driver ---------------------------------------------------------

    def run_pass(
        self,
        prev_windows=None,
        recalc_cells: set[str] | None = None,
        prev_state=None,
    ) -> PassResult:
        from repro.core.columnar import (
            ColumnTimingState,
            DIR_INDEX,
            WindowSnapshotView,
        )

        cp = self.compiled
        calc = self.calculator
        config = self.config
        n = cp.n_arcs
        state = ColumnTimingState(cp)
        result = PassResult(state=state)
        eval_before = calc.evaluations
        hits_before = calc.cache_hits
        dedup_before = calc.dedup_hits
        persisted_before = calc.persisted_hits
        ledger_before = len(self.ledger)
        self._pass_count += 1
        timers = {phase: 0.0 for phase in PASS_PHASES}
        tracer = self.obs.tracer

        overlap = config.window_check is WindowCheck.OVERLAP
        incremental = config.incremental
        prov_on = self._provenance
        batch = config.engine is Engine.BATCH
        screened_tier = self._screened
        mode = config.mode
        guard = config.guard
        clock_always = config.clock_model is ClockAggressorModel.ALWAYS
        k_slew = config.slew_degradation_factor
        tgrid = calc.transition_grid

        # Previous-state fast paths (same compiled design -> direct id
        # indexing; anything else falls back to the mapping protocol).
        col_prev = (
            prev_state
            if isinstance(prev_state, ColumnTimingState)
            and prev_state.compiled is cp
            else None
        )
        win_prev = (
            prev_windows.state
            if isinstance(prev_windows, WindowSnapshotView)
            and prev_windows.state.compiled is cp
            else None
        )

        # Slack refinement: arcs whose driver cell is forced exact.
        in_exact = np.zeros(n, dtype=bool)
        if self.exact_cells:
            for name in self.exact_cells:
                ci = cp.cell_id.get(name)
                if ci is not None:
                    in_exact[cp.cell_arc_begin[ci] : cp.cell_arc_end[ci]] = True
        fx_l = (in_exact if screened_tier else np.zeros(n, dtype=bool)).tolist()

        # Per-pass arc columns.
        a_live = np.zeros(n, dtype=bool)
        a_tt = np.zeros(n, dtype=np.float64)
        a_ts = np.zeros(n, dtype=np.float64)
        a_prov_dir = cp.arc_in_dir.astype(np.int8)
        a_eval = np.zeros(n, dtype=bool)
        a_screened = np.zeros(n, dtype=bool)
        a_coupled = np.zeros(n, dtype=bool)
        a_attach = np.zeros(n, dtype=bool)
        a_flhas = np.zeros(n, dtype=bool)
        a_flcg = np.zeros(n, dtype=np.float64)
        a_flca = np.zeros(n, dtype=np.float64)
        a_flcp = np.zeros(n, dtype=np.float64)
        a_best: list[ArcResult | None] = [None] * n
        a_worst: list[ArcResult | None] = [None] * n
        a_final: list[ArcResult | None] = [None] * n
        a_prov: list[dict | None] = [None] * n
        a_key: dict[int, tuple] = {}
        a_bkey: dict[int, tuple] = {}
        a_wkey: dict[int, tuple] = {}
        qtt_l: list[float] = [0.0] * n
        ts_l: list[float] = [0.0] * n

        with tracer.span(
            "sta.pass",
            mode=mode.value,
            engine=config.engine.value,
            incremental=recalc_cells is not None,
        ) as pass_span:
            self._init_sources(state)
            for level_index, level in enumerate(self.levels):
                with tracer.span(
                    "sta.level", index=level_index, cells=len(level)
                ) as level_span:
                    t0 = time.perf_counter()
                    records = self._lvl_cells[level_index]
                    lo = int(cp.level_indptr[level_index])
                    hi = int(cp.level_indptr[level_index + 1])
                    active_records = []
                    gate_any = False
                    for record in records:
                        cell, oi, b, e, is_ff = record
                        if (
                            recalc_cells is not None
                            and cell.name not in recalc_cells
                            and prev_state is not None
                            and (
                                bool(col_prev.processed_mask[oi])
                                if col_prev is not None
                                else self._s_outname[b] in prev_state.processed
                                if b < e
                                else cp.net_names[oi] in prev_state.processed
                            )
                        ):
                            state.copy_net_from(prev_state, oi)
                            continue
                        state.present[oi] = True
                        active_records.append(record)
                        if is_ff:
                            self._gather_flip_flop(record, state, a_live, a_tt, a_ts, a_prov_dir, ts_l)
                        elif b < e:
                            a_live[b:e] = True  # candidate; pruned below
                            gate_any = True
                    if gate_any:
                        idx = np.nonzero(a_live[lo:hi] & ~cp.arc_is_ff[lo:hi])[0] + lo
                        innet = cp.arc_in_net[idx]
                        indir = cp.arc_in_dir[idx]
                        ok = state.valid[indir, innet]
                        a_live[idx[~ok]] = False
                        live_idx = idx[ok]
                        innet = innet[ok]
                        indir = indir[ok]
                        tc = state.ev_tc[indir, innet]
                        tr = state.ev_tr[indir, innet]
                        el = cp.arc_elmore[live_idx]
                        shift = el > 0.0
                        tc = np.where(shift, tc + el, tc)
                        tr = np.where(shift, tr + k_slew * el, tr)
                        a_tt[live_idx] = tr
                        ts = tc - 0.5 * tr
                        a_ts[live_idx] = ts
                        for a, value in zip(live_idx.tolist(), ts.tolist()):
                            ts_l[a] = value
                    computed_cells: list[Cell] = []
                    tasks_of_ranges: dict[str, tuple[int, int]] = {}
                    for cell, oi, b, e, is_ff in active_records:
                        if is_ff or bool(a_live[b:e].any()):
                            computed_cells.append(cell)
                            tasks_of_ranges[cell.name] = (b, e)
                        else:
                            # No launch events reach this cell: its output
                            # stays quiet this pass.
                            state.processed_mask[oi] = True
                    timers["gather"] += time.perf_counter() - t0

                    live_slab = a_live[lo:hi]
                    n_live = int(live_slab.sum())
                    if n_live == 0:
                        continue

                    t0 = time.perf_counter()
                    with tracer.span("phase.base_waveforms", tasks=n_live):
                        result.arcs_processed += n_live
                        sl = slice(lo, hi)
                        qtt = (
                            np.ceil(np.maximum(a_tt[sl], 1e-13) / tgrid) * tgrid
                        )
                        qtt_l[lo:hi] = qtt.tolist()
                        if incremental:
                            attach = (
                                live_slab
                                & self._m_valid[sl]
                                & (self._m_tt[sl] == a_tt[sl])
                                & (self._m_exact[sl] | ~in_exact[sl])
                            )
                            a_attach[sl] = attach
                        else:
                            attach = np.zeros(hi - lo, dtype=bool)
                        windowed = self._s_windowed[sl]
                        uw = live_slab & ~windowed
                        reuse_uw = (
                            attach
                            & uw
                            & (self._m_cg[sl] == self._s_plain_cg[sl])
                            & (self._m_ca[sl] == self._s_plain_ca[sl])
                            & (self._m_cp[sl] == 0.0)
                        )
                        idx = np.nonzero(reuse_uw)[0] + lo
                        a_coupled[idx] = self._m_coupled[idx]
                        a_screened[idx] |= ~self._m_exact[idx]
                        for a in idx.tolist():
                            a_final[a] = self._m_final[a]
                            if prov_on:
                                a_prov[a] = _memo_dict_prov(self._m_prov[a])
                        w = live_slab & windowed
                        reuse_w = attach & w & self._m_has_best[sl]
                        if overlap:
                            reuse_w &= self._m_has_worst[sl]
                        idx = np.nonzero(reuse_w)[0] + lo
                        a_screened[idx] |= ~self._m_exact[idx]
                        for a in idx.tolist():
                            a_best[a] = self._m_best[a]
                            a_worst[a] = self._m_worst[a]
                            if prov_on:
                                # Tentative: overwritten if the coupling
                                # decision forces a fresh final solve.
                                a_prov[a] = _memo_dict_prov(self._m_prov[a])
                        miss = np.nonzero(
                            (uw & ~reuse_uw) | (w & ~reuse_w)
                        )[0] + lo
                        miss_l = miss.tolist()
                        if miss_l:
                            entries = []
                            for a in miss_l:
                                token = self._token(a)
                                fxa = fx_l[a]
                                if self._s_windowed_l[a]:
                                    key = (
                                        token,
                                        self._s_dir[a],
                                        qtt_l[a],
                                        self._qp_best_p[a],
                                        0.0,
                                        False,
                                    )
                                    a_bkey[a] = key
                                    entries.append((key, fxa))
                                    if overlap:
                                        key = (
                                            token,
                                            self._s_dir[a],
                                            qtt_l[a],
                                            self._qp_worst_p[a],
                                            self._qp_worst_a[a],
                                            False,
                                        )
                                        a_wkey[a] = key
                                        entries.append((key, fxa))
                                else:
                                    key = (
                                        token,
                                        self._s_dir[a],
                                        qtt_l[a],
                                        self._qp_plain_p[a],
                                        self._qp_plain_a[a],
                                        False,
                                    )
                                    a_key[a] = key
                                    entries.append((key, fxa))
                            if batch:
                                calc.prime_keys(entries)
                            for a in miss_l:
                                fxa = fx_l[a]
                                if self._s_windowed_l[a]:
                                    result.waveform_evaluations += 1
                                    a_eval[a] = True
                                    rel = calc.resolve_key(a_bkey[a], fxa)
                                    if screened_tier and calc.last_tier != "newton":
                                        a_screened[a] = True
                                    a_best[a] = rel
                                    if prov_on:
                                        a_prov[a] = self._last_prov()
                                    if overlap:
                                        result.waveform_evaluations += 1
                                        rel = calc.resolve_key(a_wkey[a], fxa)
                                        if (
                                            screened_tier
                                            and calc.last_tier != "newton"
                                        ):
                                            a_screened[a] = True
                                        a_worst[a] = rel
                                else:
                                    result.waveform_evaluations += 1
                                    a_eval[a] = True
                                    rel = calc.resolve_key(a_key[a], fxa)
                                    if screened_tier and calc.last_tier != "newton":
                                        a_screened[a] = True
                                    a_final[a] = rel
                                    a_coupled[a] = self._s_plain_coupled[a]
                                    if prov_on:
                                        a_prov[a] = self._last_prov()
                    timers["base_waveforms"] += time.perf_counter() - t0

                    waves = self._coupling_waves(computed_cells)
                    self._c_waves.inc(len(waves))
                    self._h_waves.observe(len(waves))
                    level_span.set(tasks=n_live, waves=len(waves))
                    for wave_index, wave in enumerate(waves):
                        wave_arcs = [
                            a
                            for cell in wave
                            for a in range(*tasks_of_ranges[cell.name])
                            if a_live[a]
                        ]
                        t0 = time.perf_counter()
                        with tracer.span(
                            "phase.coupling_decisions",
                            wave=wave_index,
                            tasks=len(wave_arcs),
                        ):
                            for a in wave_arcs:
                                if not self._s_windowed_l[a]:
                                    continue
                                best = a_best[a]
                                ts = ts_l[a]
                                tb_g = (ts + best.t_early) - guard
                                worst = a_worst[a]
                                tvl_g = (
                                    (ts + worst.t_late) + guard
                                    if worst is not None
                                    else float("inf")
                                )
                                agg_d = self._s_indir[a]
                                out = self._s_out[a]
                                c_lo = self._coup_indptr[out]
                                c_hi = self._coup_indptr[out + 1]
                                active_sum = 0.0
                                passive_sum = 0.0
                                n_active = 0
                                for j in range(c_lo, c_hi):
                                    other = self._coup_net[j]
                                    cap = self._coup_cap[j]
                                    if other >= 0 and (
                                        clock_always and self._net_is_clock[other]
                                    ):
                                        te, tq = float("-inf"), float("inf")
                                    elif other >= 0 and state.processed_mask[other]:
                                        if state.valid[agg_d, other]:
                                            te = state.ev_te[agg_d, other]
                                            tq = state.ev_tl[agg_d, other]
                                        else:
                                            te, tq = float("inf"), float("-inf")
                                    elif win_prev is not None:
                                        if (
                                            other >= 0
                                            and win_prev.present[other]
                                            and win_prev.valid[agg_d, other]
                                        ):
                                            te = win_prev.ev_te[agg_d, other]
                                            tq = win_prev.ev_tl[agg_d, other]
                                        else:
                                            te, tq = float("inf"), float("-inf")
                                    elif prev_windows is not None:
                                        te, tq = prev_windows.get(
                                            (
                                                cp.coup_name[j],
                                                DIRECTIONS[agg_d],
                                            ),
                                            (float("inf"), float("-inf")),
                                        )
                                    else:
                                        te, tq = float("-inf"), float("inf")
                                    may_couple = tq > tb_g
                                    if may_couple and te >= tvl_g:
                                        may_couple = False
                                    if may_couple:
                                        active_sum += cap
                                        n_active += 1
                                    else:
                                        passive_sum += cap
                                self._a_kind[a] = "overlap" if n_active else "quiet"
                                self._a_agga[a] = n_active
                                if n_active:
                                    a_flhas[a] = True
                                    a_flcg[a] = self._s_cfix[out]
                                    a_flca[a] = active_sum
                                    a_flcp[a] = passive_sum
                                else:
                                    a_final[a] = best
                                    a_coupled[a] = False
                        timers["coupling_decisions"] += time.perf_counter() - t0

                        t0 = time.perf_counter()
                        with tracer.span("phase.final_waveforms", wave=wave_index):
                            pending: list[int] = []
                            for a in wave_arcs:
                                if not a_flhas[a]:
                                    continue
                                result.coupled_arcs += 1
                                if (
                                    a_attach[a]
                                    and self._m_cg[a] == a_flcg[a]
                                    and self._m_ca[a] == a_flca[a]
                                    and self._m_cp[a] == a_flcp[a]
                                ):
                                    a_final[a] = self._m_final[a]
                                    a_coupled[a] = True
                                    if not self._m_exact[a]:
                                        a_screened[a] = True
                                    if prov_on:
                                        a_prov[a] = _memo_dict_prov(self._m_prov[a])
                                    continue
                                pending.append(a)
                            if pending:
                                entries = []
                                for a in pending:
                                    key = (
                                        self._token(a),
                                        self._s_dir[a],
                                        qtt_l[a],
                                        calc._q_cap(a_flcg[a] + a_flcp[a]),
                                        calc._q_cap(a_flca[a]),
                                        False,
                                    )
                                    a_key[a] = key
                                    entries.append((key, fx_l[a]))
                                if batch:
                                    calc.prime_keys(entries)
                                for a in pending:
                                    result.waveform_evaluations += 1
                                    a_eval[a] = True
                                    rel = calc.resolve_key(a_key[a], fx_l[a])
                                    if screened_tier and calc.last_tier != "newton":
                                        a_screened[a] = True
                                    a_final[a] = rel
                                    a_coupled[a] = True
                                    if prov_on:
                                        a_prov[a] = self._last_prov()
                        timers["final_waveforms"] += time.perf_counter() - t0

                        t0 = time.perf_counter()
                        for a in wave_arcs:
                            rel = a_final[a]
                            if prov_on:
                                prov = a_prov[a] or {}
                                if self._s_windowed_l[a]:
                                    if (
                                        a_coupled[a]
                                        and a_best[a] is not None
                                        and rel is not None
                                    ):
                                        delta = rel.t_cross - a_best[a].t_cross
                                    else:
                                        delta = 0.0
                                elif mode is AnalysisMode.BEST_CASE:
                                    delta = 0.0
                                else:
                                    delta = None
                                row = self.ledger.append(
                                    tier=prov.get("tier", "newton"),
                                    origin=prov.get("origin", "fresh"),
                                    escalation=prov.get("escalation"),
                                    signature=prov.get("signature", ""),
                                    coupling=self._a_kind[a],
                                    aggressors_total=self._s_aggt[a],
                                    aggressors_active=self._a_agga[a],
                                    pass_index=self._pass_count,
                                    coupling_delta=delta,
                                )
                            else:
                                row = None
                            ts = ts_l[a]
                            tc = ts + rel.t_cross
                            tr = rel.transition
                            te = ts + rel.t_early
                            tl = ts + rel.t_late
                            d = self._s_outd[a]
                            out = self._s_out[a]
                            if state.valid[d, out]:
                                cur_tc = state.ev_tc[d, out]
                                winner = tc > cur_tc
                                # Pointwise-worst merge (merge_worst):
                                # each component keeps the current value
                                # on ties, like python max/min.
                                if not cur_tc >= tc:
                                    state.ev_tc[d, out] = tc
                                if not state.ev_tr[d, out] >= tr:
                                    state.ev_tr[d, out] = tr
                                if not state.ev_te[d, out] <= te:
                                    state.ev_te[d, out] = te
                                if not state.ev_tl[d, out] >= tl:
                                    state.ev_tl[d, out] = tl
                                state._ev_cache.pop((d, out), None)
                            else:
                                state.valid[d, out] = True
                                state.ev_tc[d, out] = tc
                                state.ev_tr[d, out] = tr
                                state.ev_te[d, out] = te
                                state.ev_tl[d, out] = tl
                                winner = True
                            if winner:
                                state.win_arc[d, out] = a
                                state.win_coupled[d, out] = a_coupled[a]
                                state.win_prov_dir[d, out] = a_prov_dir[a]
                                if row is not None:
                                    state.aprov_row[d, out] = row
                                if state.prov_overrides:
                                    state.prov_overrides.pop(
                                        (self._s_outname[a], DIRECTIONS[d]), None
                                    )
                            if a_eval[a]:
                                result.dirty_arcs += 1
                            else:
                                result.reused_arcs += 1
                            if incremental:
                                self._m_valid[a] = True
                                self._m_tt[a] = a_tt[a]
                                self._m_exact[a] = not a_screened[a]
                                self._m_coupled[a] = a_coupled[a]
                                best = a_best[a]
                                self._m_best[a] = best
                                self._m_has_best[a] = best is not None
                                worst = a_worst[a]
                                self._m_worst[a] = worst
                                self._m_has_worst[a] = worst is not None
                                self._m_final[a] = rel
                                self._m_prov[a] = a_prov[a]
                                if a_flhas[a]:
                                    self._m_cg[a] = a_flcg[a]
                                    self._m_ca[a] = a_flca[a]
                                    self._m_cp[a] = a_flcp[a]
                                elif not self._s_windowed_l[a]:
                                    self._m_cg[a] = self._s_plain_cg[a]
                                    self._m_ca[a] = self._s_plain_ca[a]
                                    self._m_cp[a] = 0.0
                                else:
                                    self._m_cg[a] = np.nan
                                    self._m_ca[a] = np.nan
                                    self._m_cp[a] = np.nan
                        # Wave barrier: these events now count as calculated
                        # for the later waves' and levels' decisions.
                        for cell in wave:
                            state.processed_mask[
                                cp.net_id[cell.output_pin.net.name]
                            ] = True
                        timers["merge"] += time.perf_counter() - t0

            self._collect_arrivals(state, result)
            pass_span.set(
                arcs=result.arcs_processed,
                evaluations=result.waveform_evaluations,
                coupled_arcs=result.coupled_arcs,
                longest_delay_ns=result.longest_delay * 1e9,
            )

        result.cache_evaluations = calc.evaluations - eval_before
        result.cache_hits = calc.cache_hits - hits_before
        result.cache_dedup_hits = calc.dedup_hits - dedup_before
        result.cache_persisted_hits = calc.persisted_hits - persisted_before
        result.provenance_rows = len(self.ledger) - ledger_before
        result.phase_seconds = timers
        self._c_passes.inc()
        self._c_arcs.inc(result.arcs_processed)
        self._c_evals.inc(result.waveform_evaluations)
        self._c_coupled.inc(result.coupled_arcs)
        self._c_dirty.inc(result.dirty_arcs)
        self._c_reused.inc(result.reused_arcs)
        for phase, seconds in timers.items():
            self._c_phase[phase].inc(seconds)
        return result

    def _gather_flip_flop(
        self, record, state, a_live, a_tt, a_ts, a_prov_dir, ts_l
    ) -> None:
        """Launch both Q transitions off the clock arrival (the columnar
        equivalent of :meth:`_flip_flop_tasks`)."""
        from repro.core.columnar import DIR_INDEX

        cell, oi, b, e, _ = record
        cp = self.compiled
        process = self.design.process
        ci = cp.cell_id[cell.name]
        clk_net_id = int(cp.cell_clk_net[ci])
        clk_event = None
        if clk_net_id >= 0:
            clk_name = cp.net_names[clk_net_id]
            clk_event = state.event(clk_name, RISING) or state.event(
                clk_name, FALLING
            )
        if clk_event is not None and clk_net_id >= 0:
            clk_arrival = self._arrival_at_pin(
                clk_event, clk_name, cp.cell_clk_terminal[ci]
            )
        else:
            clk_arrival = ideal_ramp_event(
                RISING,
                0.0,
                self.config.input_transition,
                process.vdd,
                process.v_th_model,
            )
        launch_cross = clk_arrival.t_cross + cell.ctype.clk_to_q
        tt = clk_arrival.transition
        # The internal arrival is an ideal ramp starting at
        # launch_cross - tt/2; its t_start round-trips through t_cross
        # exactly as the object core's _ArcTask.t_start does.
        ts = ((launch_cross - 0.5 * tt) + 0.5 * tt) - 0.5 * tt
        a_live[b:e] = True
        a_tt[b:e] = tt
        a_ts[b:e] = ts
        a_prov_dir[b:e] = DIR_INDEX[clk_arrival.direction]
        for a in range(b, e):
            ts_l[a] = ts


def _memo_dict_prov(prov: dict | None) -> dict | None:
    """Columnar counterpart of :func:`_memo_prov` (raw prov dict in,
    memo-origin prov dict out)."""
    if prov is None:
        return None
    return {**prov, "origin": "memo"}
