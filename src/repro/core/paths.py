"""Longest-path extraction.

Backtraces the provenance recorded during propagation from a capture
endpoint to a timing source, yielding the stage-by-stage critical path that
the validation harness re-simulates (paper, Section 6: "The simulations of
the longest paths were done with lumped resistances and capacitances
extracted from the layout").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.netlist import Circuit, Pin
from repro.core.graph import TimingState
from repro.core.propagation import PassResult
from repro.waveform.ramp import RampEvent
from repro.errors import InputError


@dataclass(frozen=True)
class PathStep:
    """One gate stage on the critical path.

    The step's cell receives ``in_direction`` on ``in_pin`` (net
    ``in_net``) and produces ``out_direction`` on ``out_net``; ``event``
    is the propagated worst event at the driver output.
    """

    cell: str
    ctype: str
    in_pin: str
    in_net: str
    in_direction: str
    out_net: str
    out_direction: str
    event: RampEvent
    coupled: bool


@dataclass
class CriticalPath:
    """A source-to-endpoint path, source first."""

    endpoint: str
    direction: str
    steps: list[PathStep] = field(default_factory=list)

    @property
    def delay(self) -> float:
        if not self.steps:
            return 0.0
        return self.steps[-1].event.t_cross

    @property
    def source_net(self) -> str:
        if not self.steps:
            return ""
        return self.steps[0].in_net

    def net_sequence(self) -> list[str]:
        """Nets along the path, source net first, endpoint net last."""
        if not self.steps:
            return []
        return [self.steps[0].in_net] + [step.out_net for step in self.steps]

    def cells(self) -> list[str]:
        return [step.cell for step in self.steps]

    def __len__(self) -> int:
        return len(self.steps)


def endpoint_net_name(circuit: Circuit, terminal: str) -> str:
    """Map an endpoint terminal name back to its net."""
    for endpoint in circuit.timing_endpoints():
        name = endpoint.full_name if isinstance(endpoint, Pin) else endpoint.name
        if name == terminal and endpoint.net is not None:
            return endpoint.net.name
    raise KeyError(f"unknown endpoint terminal {terminal!r}")


def k_worst_paths(
    circuit: Circuit,
    result: PassResult,
    k: int = 5,
) -> list[CriticalPath]:
    """The worst path ending at each of the ``k`` latest endpoint
    arrivals (one path per endpoint/direction, sorted by arrival)."""
    ranked = sorted(result.arrivals, key=lambda a: a.event.t_cross, reverse=True)
    paths = []
    for arrival in ranked[:k]:
        paths.append(
            extract_critical_path(circuit, result, arrival.endpoint, arrival.direction)
        )
    return paths


def report_timing(
    circuit: Circuit,
    result: PassResult,
    k: int = 3,
) -> str:
    """Text timing report: the K worst paths with per-stage breakdown
    (arrival, incremental delay, transition, coupling flag)."""
    ranked = sorted(result.arrivals, key=lambda a: a.event.t_cross, reverse=True)
    blocks: list[str] = []
    for arrival in ranked[:k]:
        path = extract_critical_path(
            circuit, result, arrival.endpoint, arrival.direction
        )
        lines = [
            f"Path to {arrival.endpoint} ({arrival.direction}), "
            f"arrival {arrival.event.t_cross * 1e12:.1f} ps",
            f"{'stage':<22} {'net':<18} {'dir':<5} {'arrive [ps]':>12} "
            f"{'incr [ps]':>10} {'tran [ps]':>10} {'SI':>3}",
            "-" * 86,
        ]
        previous = 0.0
        for step in path.steps:
            arrive = step.event.t_cross * 1e12
            lines.append(
                f"{step.cell:<22} {step.out_net:<18} {step.out_direction:<5} "
                f"{arrive:>12.1f} {arrive - previous:>10.1f} "
                f"{step.event.transition * 1e12:>10.1f} "
                f"{'*' if step.coupled else '':>3}"
            )
            previous = arrive
        wire = arrival.event.t_cross * 1e12 - previous
        if abs(wire) > 1e-3:
            lines.append(
                f"{'(wire to endpoint)':<22} {'':<18} {'':<5} "
                f"{arrival.event.t_cross * 1e12:>12.1f} {wire:>10.1f}"
            )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def extract_critical_path(
    circuit: Circuit,
    result: PassResult,
    endpoint: str | None = None,
    direction: str | None = None,
) -> CriticalPath:
    """Backtrace the worst path ending at ``endpoint`` (defaults to the
    pass's critical endpoint)."""
    if endpoint is None:
        endpoint = result.critical_endpoint
    if direction is None:
        direction = result.critical_direction
    if not endpoint:
        raise InputError("pass result has no critical endpoint (empty design?)")

    state = result.state
    path = CriticalPath(endpoint=endpoint, direction=direction)
    net_name = endpoint_net_name(circuit, endpoint)
    current_direction = direction

    guard = len(circuit.cells) + len(circuit.nets) + 2
    steps_reversed: list[PathStep] = []
    for _ in range(guard):
        provenance = state.provenance.get((net_name, current_direction))
        if provenance is None:
            break
        event = state.event(net_name, current_direction)
        cell = circuit.cells[provenance.cell]
        steps_reversed.append(
            PathStep(
                cell=provenance.cell,
                ctype=cell.ctype.name,
                in_pin=provenance.in_pin,
                in_net=provenance.in_net,
                in_direction=provenance.in_direction,
                out_net=net_name,
                out_direction=current_direction,
                event=event,
                coupled=provenance.coupled,
            )
        )
        if not provenance.in_net:
            break
        net_name = provenance.in_net
        current_direction = provenance.in_direction
        if cell.is_sequential:
            # The flip-flop's clock pin ends the data path backtrace; the
            # remaining trace would walk the clock tree.
            break
    path.steps = list(reversed(steps_reversed))
    return path
