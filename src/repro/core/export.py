"""Machine-readable result export.

Serialises analysis results to plain dictionaries / JSON so downstream
tooling (regression dashboards, result diffing) can consume them without
importing the library's classes.  Times are emitted in seconds as floats.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.analyzer import StaResult
from repro.core.modes import AnalysisMode
from repro.core.paths import CriticalPath


def sta_result_to_dict(result: StaResult) -> dict[str, Any]:
    """One analysis run as a JSON-safe dictionary."""
    assert result.final_pass is not None
    return {
        "design": result.design_name,
        "mode": result.mode.value,
        "longest_delay": result.longest_delay,
        "critical_endpoint": result.critical_endpoint,
        "critical_direction": result.critical_direction,
        "runtime_seconds": result.runtime_seconds,
        "waveform_evaluations": result.waveform_evaluations,
        "arcs_processed": result.arcs_processed,
        "coupled_arcs": result.coupled_arcs,
        "passes": result.passes,
        "history": [
            {
                "index": record.index,
                "longest_delay": record.longest_delay,
                "waveform_evaluations": record.waveform_evaluations,
                "seconds": record.seconds,
                "recalculated_cells": record.recalculated_cells,
            }
            for record in result.history
        ],
        "arrivals": [
            {
                "endpoint": arrival.endpoint,
                "direction": arrival.direction,
                "t_cross": arrival.event.t_cross,
                "transition": arrival.event.transition,
                "t_early": arrival.event.t_early,
                "t_late": arrival.event.t_late,
            }
            for arrival in result.final_pass.arrivals
        ],
    }


def path_to_dict(path: CriticalPath) -> dict[str, Any]:
    """A critical path as a JSON-safe dictionary."""
    return {
        "endpoint": path.endpoint,
        "direction": path.direction,
        "delay": path.delay,
        "steps": [
            {
                "cell": step.cell,
                "ctype": step.ctype,
                "in_pin": step.in_pin,
                "in_net": step.in_net,
                "in_direction": step.in_direction,
                "out_net": step.out_net,
                "out_direction": step.out_direction,
                "t_cross": step.event.t_cross,
                "transition": step.event.transition,
                "coupled": step.coupled,
            }
            for step in path.steps
        ],
    }


def results_to_dict(
    results: dict[AnalysisMode, StaResult],
    paths: dict[AnalysisMode, CriticalPath] | None = None,
) -> dict[str, Any]:
    """A full mode-comparison (one paper table) as a dictionary."""
    payload: dict[str, Any] = {"modes": {}}
    for mode, result in results.items():
        entry = sta_result_to_dict(result)
        if paths is not None and mode in paths:
            entry["critical_path"] = path_to_dict(paths[mode])
        payload["modes"][mode.value] = entry
    return payload


def save_json(payload: dict[str, Any], path: str, indent: int = 2) -> None:
    """Write a payload produced by the functions above to disk."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=indent, sort_keys=True)
        handle.write("\n")


def load_json(path: str) -> dict[str, Any]:
    with open(path) as handle:
        return json.load(handle)
