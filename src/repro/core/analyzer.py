"""The crosstalk-aware static timing analyzer facade.

:class:`CrosstalkSTA` runs any of the paper's five analysis modes on a
prepared design and returns a :class:`StaResult` with the longest-path
delay bound, per-endpoint arrivals, the critical path and runtime /
evaluation statistics.  One analyzer instance shares its gate-delay cache
across modes, mirroring how the paper reports all five rows per circuit.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field, replace

from repro.core.checkpoint import CheckpointManager
from repro.core.graph import TimingState
from repro.core.iterative import IterationRecord, esperance_recalc_cells, run_iterative
from repro.core.modes import AnalysisMode, Core, SolverTier, StaConfig
from repro.core.paths import CriticalPath, extract_critical_path
from repro.core.propagation import ColumnarPropagator, PassResult, Propagator
from repro.core.provenance import ProvenanceLedger
from repro.core.slack import SlackResult, compute_slack
from repro.errors import DegradationBudgetError
from repro.flow.design import Design
from repro.obs.metrics import diff_snapshots
from repro.obs.telemetry import Observability, RunTelemetry
from repro.waveform.gatedelay import GateDelayCalculator


@dataclass
class StaResult:
    """Outcome of one analysis run."""

    mode: AnalysisMode
    design_name: str
    longest_delay: float
    critical_endpoint: str
    critical_direction: str
    runtime_seconds: float
    waveform_evaluations: int
    arcs_processed: int
    coupled_arcs: int
    passes: int
    history: list[IterationRecord] = field(default_factory=list)
    final_pass: PassResult | None = None
    cache_stats: dict = field(default_factory=dict)
    phase_seconds: dict[str, float] = field(default_factory=dict)
    telemetry: RunTelemetry | None = None
    # Arcs whose solve failed and received a conservative substitute bound
    # during this run (see GateDelayCalculator.degraded); empty on a
    # healthy run.  The reported delay is still a valid upper bound.
    degraded_arcs: list[dict] = field(default_factory=list)
    # The propagator's per-arc provenance ledger (shared across the
    # passes of this run; row ids in final_pass.state.arc_prov index into
    # it).  None when config.provenance is off.
    ledger: ProvenanceLedger | None = None
    # Seconds spent compiling the design into the columnar id arrays,
    # amortized once per analyzer (0.0 under the object core or when the
    # compiled design was already cached).
    compile_seconds: float = 0.0
    # Backward required-time pass over the final state: endpoint setup
    # checks plus per-net/per-arc slack (see repro.core.slack).  None
    # unless config.clock_period is set.
    slack: "SlackResult | None" = None

    @property
    def longest_delay_ns(self) -> float:
        return self.longest_delay * 1e9

    @property
    def worst_slack(self) -> float | None:
        return self.slack.worst_slack if self.slack is not None else None

    def arrival(self, endpoint: str, direction: str) -> float:
        """Arrival time at one endpoint (seconds)."""
        assert self.final_pass is not None
        for a in self.final_pass.arrivals:
            if a.endpoint == endpoint and a.direction == direction:
                return a.event.t_cross
        raise KeyError(f"no arrival recorded for {endpoint!r} ({direction})")

    def arrival_map(self) -> dict[tuple[str, str], float]:
        assert self.final_pass is not None
        return self.final_pass.arrival_map()

    def __str__(self) -> str:
        return (
            f"{self.design_name} [{self.mode.value}]: "
            f"{self.longest_delay_ns:.3f} ns via {self.critical_endpoint} "
            f"({self.critical_direction}), {self.passes} pass(es), "
            f"{self.waveform_evaluations} waveform evals, "
            f"{self.runtime_seconds:.2f} s"
        )


class CrosstalkSTA:
    """Static timing analysis taking crosstalk into account."""

    def __init__(
        self,
        design: Design,
        config: StaConfig | None = None,
        calculator: GateDelayCalculator | None = None,
        obs: Observability | None = None,
        keep_propagators: bool = False,
    ):
        self.design = design
        self.config = config if config is not None else StaConfig()
        # Session reuse (the timing-query service): with
        # ``keep_propagators`` the analyzer retains one Propagator per
        # exact configuration across run() calls, so a repeated analysis
        # starts with a warm delta-driven arc memo instead of solving
        # every arc again.  ``_warm_sources`` seeds a *new* propagator
        # from another analyzer's retained one (see warm_start_from).
        self.keep_propagators = keep_propagators
        self._propagators: dict[StaConfig, Propagator] = {}
        self._warm_sources: dict[StaConfig, Propagator] = {}
        self._compiled = None
        self._compile_seconds = 0.0
        if obs is not None:
            self.obs = obs
        else:
            self.obs = Observability.disabled()
        if calculator is not None:
            self.calculator = calculator
            # Adopt the calculator's registry so one snapshot covers arc
            # cache + propagation + solver (its instruments are bound to it
            # at construction and cannot move to ours).
            self.obs.metrics = calculator.metrics
        else:
            self.calculator = GateDelayCalculator(
                process=design.process,
                engine=self.config.engine.value,
                workers=self.config.workers,
                metrics=self.obs.metrics,
                strict=self.config.strict,
                worker_retries=self.config.worker_retries,
                worker_timeout=self.config.worker_timeout,
                solver_tier=self.config.solver_tier.value,
                screen_tolerance=self.config.screen_tolerance,
            )
        if self.config.arc_cache:
            with self.obs.tracer.span(
                "sta.arc_cache_load", path=str(self.config.arc_cache)
            ):
                self.calculator.load_cache_file(
                    self.config.arc_cache, self._cell_types()
                )

    def warm_start_from(self, other: "CrosstalkSTA") -> None:
        """Seed this analyzer's propagators from another analyzer's
        retained ones (requires ``other`` to use ``keep_propagators``).

        The designs may differ -- this is the what-if path of a design
        session: the edited design's propagator adopts every memo entry
        whose arc is electrically unchanged and re-solves only the dirty
        cone (see :meth:`Propagator.warm_start_from`).  Reuse is
        bit-identical to a cold analysis by construction.
        """
        self._warm_sources = dict(other._propagators)

    def _propagator_for(self, config: StaConfig) -> Propagator:
        propagator = self._propagators.get(config)
        if propagator is not None:
            return propagator
        if config.core is Core.COLUMNAR:
            propagator = ColumnarPropagator(
                self.design,
                config,
                self.calculator,
                obs=self.obs,
                compiled=self._compiled_design(),
            )
        else:
            propagator = Propagator(
                self.design, config, self.calculator, obs=self.obs
            )
        source = self._warm_sources.get(config)
        if source is None:
            # The memo is core-agnostic (export_memo is the exchange
            # format), so a retained propagator warm-starts an analysis
            # that differs only in its core layout.
            for alt in Core:
                if alt is not config.core:
                    source = self._warm_sources.get(replace(config, core=alt))
                    if source is not None:
                        break
        if source is not None:
            propagator.warm_start_from(source)
        if self.keep_propagators:
            self._propagators[config] = propagator
        return propagator

    def _compiled_design(self):
        """The design's columnar compilation, built once per analyzer and
        shared by every columnar propagator (all modes, all configs)."""
        compiled = self._compiled
        if compiled is None:
            from repro.core.columnar import compile_design

            with self.obs.tracer.span(
                "sta.compile_design", design=self.design.name
            ):
                compiled = compile_design(self.design)
            self._compiled = compiled
            self._compile_seconds += compiled.compile_seconds
        return compiled

    def _cell_types(self):
        return {cell.ctype.name: cell.ctype for cell in self.design.circuit.cells.values()}.values()

    def _checkpoint_fingerprint(self, config: StaConfig) -> str:
        """Hash of everything that determines the iterative pass sequence
        -- a checkpoint is only resumable into the identical analysis."""
        blob = "|".join(
            str(part)
            for part in (
                self.design.name,
                self.calculator.fingerprint(self._cell_types()),
                config.mode.value,
                config.input_transition,
                config.guard,
                config.max_iterations,
                config.convergence_tolerance,
                config.esperance,
                config.esperance_slack,
                config.clock_model.value,
                config.slew_degradation_factor,
                config.window_check.value,
            )
        )
        # Tier fields are appended only for non-exact tiers so every
        # checkpoint written before the tiered pipeline existed (and every
        # exact-tier checkpoint since) keeps its fingerprint unchanged.
        if config.solver_tier is not SolverTier.EXACT:
            blob += "|" + "|".join(
                str(part)
                for part in (
                    config.solver_tier.value,
                    config.screen_tolerance,
                    config.screen_slack_margin,
                )
            )
        # Same append-only-when-non-default pattern: a ledger-off
        # checkpoint must not resume a ledger-on run (the restored passes
        # would have no provenance rows), but every default-config
        # fingerprint stays what it always was.
        if not config.provenance:
            blob += "|provenance_off"
        return hashlib.sha256(blob.encode()).hexdigest()

    def _refine_screened(
        self,
        propagator: Propagator,
        config: StaConfig,
        final: PassResult,
        history: list[IterationRecord],
    ) -> PassResult:
        """Force the near-critical cone to the exact tier.

        The screened run's reported path may rest on screened (bounded,
        not solved) arcs.  This loop marks every cell whose slack is
        within ``screen_slack_margin`` of the longest-path delay (the
        same backward sweep the Esperance speed-up uses), adds them to
        the propagator's ``exact_cells``, and re-runs the pass with only
        those cells recalculated -- now answered by the full Newton
        solver.  Tightening a near-critical arc can promote a different
        path, so the sweep repeats until no new cell crosses the margin
        (bounded at four rounds; the cone grows monotonically, so each
        round only adds work).  Every pass is individually a valid upper
        bound and exact arcs are never later than their screened bounds,
        so the minimum over passes is reported.
        """
        total_cells = len(propagator.order)
        # ONE_STEP must refine without aggressor windows: feeding the
        # previous pass's windows back in would turn it into a second
        # iterative pass and could undercut the exact one-step bound the
        # screened run promises to stay above.
        use_windows = config.mode is AnalysisMode.ITERATIVE
        for _ in range(4):
            cells = esperance_recalc_cells(
                self.design, propagator, final, config.screen_slack_margin
            )
            new = cells - propagator.exact_cells
            if not new:
                break
            propagator.exact_cells |= new
            with self.obs.tracer.span(
                "sta.screen_refine", exact_cells=len(propagator.exact_cells)
            ):
                t0 = time.perf_counter()
                refined = propagator.run_pass(
                    prev_windows=final.state.window_snapshot() if use_windows else None,
                    recalc_cells=set(propagator.exact_cells),
                    prev_state=final.state,
                )
                history.append(
                    IterationRecord(
                        index=len(history) + 1,
                        longest_delay=refined.longest_delay,
                        waveform_evaluations=refined.waveform_evaluations,
                        seconds=time.perf_counter() - t0,
                        recalculated_cells=len(propagator.exact_cells),
                        total_cells=total_cells,
                        cache_evaluations=refined.cache_evaluations,
                        cache_hits=refined.cache_hits,
                        cache_dedup_hits=refined.cache_dedup_hits,
                        cache_persisted_hits=refined.cache_persisted_hits,
                        dirty_arcs=refined.dirty_arcs,
                        reused_arcs=refined.reused_arcs,
                        phase_seconds=dict(refined.phase_seconds),
                        provenance_rows=refined.provenance_rows,
                    )
                )
            if refined.longest_delay <= final.longest_delay:
                final = refined
        return final

    def run(self, mode: AnalysisMode | None = None) -> StaResult:
        """Run one analysis mode (defaults to the configured one).

        When ``config.max_degraded`` is set and more arcs than that had
        to fall back to conservative substitute bounds, raises
        :class:`DegradationBudgetError` carrying the (still valid, but
        over-degraded) result on its ``result`` attribute.
        """
        config = self.config if mode is None else self.config.with_mode(mode)
        propagator = self._propagator_for(config)
        if config.provenance:
            # One run, one ledger: each pass's arc_prov row ids index into
            # it, and a persistent session must not accumulate rows across
            # re-analyses.  The previous result keeps its own (replaced,
            # not cleared) ledger object, so its row ids stay valid.
            propagator.ledger = ProvenanceLedger()
        metrics_before = self.obs.metrics.snapshot()
        degraded_before = len(self.calculator.degraded)

        t0 = time.perf_counter()
        with self.obs.tracer.span(
            "sta.run", mode=config.mode.value, design=self.design.name
        ):
            if config.mode is AnalysisMode.ITERATIVE:
                checkpoint = None
                if config.checkpoint:
                    checkpoint = CheckpointManager(
                        config.checkpoint,
                        fingerprint=self._checkpoint_fingerprint(config),
                        propagator=propagator,
                    )
                iterative = run_iterative(propagator, checkpoint=checkpoint)
                final = iterative.final
                history = iterative.history
            else:
                final = propagator.run_pass()
                history = [
                    IterationRecord(
                        index=1,
                        longest_delay=final.longest_delay,
                        waveform_evaluations=final.waveform_evaluations,
                        seconds=time.perf_counter() - t0,
                        recalculated_cells=len(propagator.order),
                        total_cells=len(propagator.order),
                        cache_evaluations=final.cache_evaluations,
                        cache_hits=final.cache_hits,
                        cache_dedup_hits=final.cache_dedup_hits,
                        cache_persisted_hits=final.cache_persisted_hits,
                        dirty_arcs=final.dirty_arcs,
                        reused_arcs=final.reused_arcs,
                        phase_seconds=dict(final.phase_seconds),
                        provenance_rows=final.provenance_rows,
                    )
                ]
            if (
                config.solver_tier is SolverTier.SCREENED
                and config.screen_slack_margin > 0
            ):
                final = self._refine_screened(propagator, config, final, history)
        runtime = time.perf_counter() - t0

        slack = None
        if config.clock_period is not None:
            with self.obs.tracer.span(
                "sta.slack", mode=config.mode.value, design=self.design.name
            ):
                slack = compute_slack(
                    self.design,
                    final,
                    config.clock_period,
                    config.setup_time,
                )
            metrics = self.obs.metrics
            metrics.counter("slack.runs").inc()
            metrics.counter("slack.endpoints").inc(len(slack.endpoints.slacks))
            metrics.counter("slack.violations").inc(slack.violations)
            metrics.counter("slack.arcs").inc(len(slack.arc_slack))
            metrics.gauge("slack.worst_ps").set(slack.worst_slack_ps)
            metrics.gauge("slack.seconds").set(slack.runtime_seconds)

        if config.arc_cache:
            with self.obs.tracer.span(
                "sta.arc_cache_save", path=str(config.arc_cache)
            ):
                self.calculator.save_cache_file(config.arc_cache, self._cell_types())

        phase_totals: dict[str, float] = {}
        for record in history:
            for phase, seconds in record.phase_seconds.items():
                phase_totals[phase] = phase_totals.get(phase, 0.0) + seconds

        telemetry = RunTelemetry(
            mode=config.mode.value,
            design=self.design.name,
            runtime_seconds=runtime,
            passes=[record.to_dict() for record in history],
            phase_seconds=phase_totals,
            metrics=diff_snapshots(metrics_before, self.obs.metrics.snapshot()),
        )

        degraded = list(self.calculator.degraded[degraded_before:])
        result = StaResult(
            mode=config.mode,
            design_name=self.design.name,
            longest_delay=final.longest_delay,
            critical_endpoint=final.critical_endpoint,
            critical_direction=final.critical_direction,
            runtime_seconds=runtime,
            waveform_evaluations=sum(r.waveform_evaluations for r in history),
            arcs_processed=final.arcs_processed,
            coupled_arcs=final.coupled_arcs,
            passes=len(history),
            history=history,
            final_pass=final,
            cache_stats=self.calculator.cache_stats(),
            phase_seconds=phase_totals,
            telemetry=telemetry,
            degraded_arcs=degraded,
            ledger=propagator.ledger if config.provenance else None,
            compile_seconds=self._compile_seconds,
            slack=slack,
        )
        if config.max_degraded is not None and len(degraded) > config.max_degraded:
            raise DegradationBudgetError(
                degraded=len(degraded),
                budget=config.max_degraded,
                result=result,
            )
        return result

    def run_all_modes(self) -> dict[AnalysisMode, StaResult]:
        """Run the paper's five modes (the rows of Tables 1-3)."""
        return {mode: self.run(mode) for mode in AnalysisMode}

    def critical_path(self, result: StaResult) -> CriticalPath:
        """Backtrace the longest path of a finished run."""
        assert result.final_pass is not None
        return extract_critical_path(self.design.circuit, result.final_pass)
