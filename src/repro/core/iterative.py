"""The iterative refinement algorithm (paper, Section 5.2).

The one-step pass is repeated; after every pass the per-net quiescent
times are stored and fed to the next pass, so no worst-case "uncalculated
neighbour" assumptions remain from the second pass on.  Iteration stops
when the longest-path delay no longer decreases::

    delay := default
    do
        delay_old := delay
        delay := do one-step sta
        store quiescent times for each wire
    while (delay < delay_old)

Every pass individually guarantees an upper bound, so the smallest pass
result is the reported bound.  The optional *Esperance* speed-up
(Benkoski et al. [11]) recomputes only nets on long paths from the second
pass on.

Robustness: a stop is classified as *convergence* (the final pass
matches the best bound) or *oscillation* (the delay bounced back above
an earlier bound -- coupling decisions flipping between passes); an
oscillating stop is logged with the full pass history and counted under
``iterative.oscillation_stops``, and the reported result is still the
smallest pass, so the bound stays valid either way.  An optional
checkpoint store (see :mod:`repro.core.checkpoint`) persists the state
after every pass so an interrupted run resumes bit-identically.
"""

from __future__ import annotations

import logging
import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.core.graph import TimingState
from repro.core.propagation import PassResult, Propagator
from repro.flow.design import Design
from repro.waveform.pwl import FALLING, RISING, opposite

logger = logging.getLogger("repro.core.iterative")


@dataclass
class IterationRecord:
    """Bookkeeping for one pass of the iterative algorithm."""

    index: int
    longest_delay: float
    waveform_evaluations: int
    seconds: float
    recalculated_cells: int
    total_cells: int
    cache_evaluations: int = 0
    cache_hits: int = 0
    # Hit taxonomy (distinct, not conflated): in-run deduplication --
    # the same canonical arc situation requested again -- versus reuse
    # of entries loaded from a persistent cache file.
    cache_dedup_hits: int = 0
    cache_persisted_hits: int = 0
    # Delta-driven accounting: arcs that needed at least one waveform
    # solve this pass versus arcs served entirely from the previous
    # pass's memo (unchanged fingerprints).
    dirty_arcs: int = 0
    reused_arcs: int = 0
    phase_seconds: dict[str, float] = field(default_factory=dict)
    # Provenance-ledger rows appended during this pass (0 when disabled).
    provenance_rows: int = 0

    @property
    def recalc_fraction(self) -> float:
        if self.total_cells == 0:
            return 0.0
        return self.recalculated_cells / self.total_cells

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_evaluations + self.cache_hits
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def dedup_ratio(self) -> float:
        """Fraction of cache lookups served by in-run deduplication
        (excludes persistent-cache loads, which are not this run's work)."""
        lookups = self.cache_evaluations + self.cache_hits
        return self.cache_dedup_hits / lookups if lookups else 0.0

    @property
    def dirty_fraction(self) -> float:
        """Fraction of this pass's arcs that actually required solving."""
        arcs = self.dirty_arcs + self.reused_arcs
        return self.dirty_arcs / arcs if arcs else 0.0

    def to_dict(self) -> dict:
        """JSON-safe summary for telemetry artifacts."""
        return {
            "index": self.index,
            "longest_delay_ns": self.longest_delay * 1e9,
            "waveform_evaluations": self.waveform_evaluations,
            "seconds": self.seconds,
            "recalculated_cells": self.recalculated_cells,
            "total_cells": self.total_cells,
            "recalc_fraction": self.recalc_fraction,
            "cache_evaluations": self.cache_evaluations,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": self.cache_hit_rate,
            "cache_dedup_hits": self.cache_dedup_hits,
            "cache_persisted_hits": self.cache_persisted_hits,
            "dedup_ratio": self.dedup_ratio,
            "dirty_arcs": self.dirty_arcs,
            "reused_arcs": self.reused_arcs,
            "dirty_fraction": self.dirty_fraction,
            "provenance_rows": self.provenance_rows,
            "phase_seconds": dict(self.phase_seconds),
        }


@dataclass
class IterativeResult:
    """Final pass (the converged bound) plus the per-pass history."""

    final: PassResult
    history: list[IterationRecord] = field(default_factory=list)

    @property
    def passes(self) -> int:
        return len(self.history)


class CheckpointStore(Protocol):
    """What :func:`run_iterative` needs from a checkpoint backend
    (satisfied by :class:`repro.core.checkpoint.CheckpointManager`)."""

    def save(
        self,
        current: PassResult,
        best: PassResult,
        history: list[IterationRecord],
        converged: bool,
    ) -> None: ...

    def load(
        self,
    ) -> tuple[PassResult, PassResult, list[IterationRecord], bool] | None: ...


def run_iterative(
    propagator: Propagator,
    checkpoint: CheckpointStore | None = None,
    after_pass: Callable[[int, PassResult], None] | None = None,
) -> IterativeResult:
    """Run the iterative algorithm to convergence.

    ``checkpoint`` persists the state after every pass and, when it
    already holds passes for this configuration, resumes from them
    (bit-identical to an uninterrupted run).  ``after_pass(index,
    result)`` is invoked after each pass is recorded and checkpointed --
    the fault-injection harness uses it to interrupt mid-run.
    """
    config = propagator.config
    total_cells = len(propagator.order)
    history: list[IterationRecord] = []
    obs = propagator.obs
    tracer = obs.tracer
    metrics = obs.metrics
    g_passes = metrics.gauge("iterative.passes")
    g_recalc = metrics.gauge("iterative.recalc_fraction")
    g_dirty = metrics.gauge("iterative.dirty_fraction")
    g_waves = metrics.gauge("iterative.coupling_waves")
    c_waves = metrics.counter("propagation.coupling_waves")
    c_osc = metrics.counter("iterative.oscillation_stops")
    waves_before = c_waves.value

    current: PassResult | None = None
    best: PassResult | None = None
    if checkpoint is not None:
        restored = checkpoint.load()
        if restored is not None:
            current, best, history, converged = restored
            if converged:
                g_passes.set(len(history))
                g_waves.set(c_waves.value - waves_before)
                return IterativeResult(final=best, history=history)

    if current is None:
        with tracer.span("iterative.pass", index=1, full=True):
            t0 = time.perf_counter()
            current = propagator.run_pass(prev_windows=None)
            history.append(
                IterationRecord(
                    index=1,
                    longest_delay=current.longest_delay,
                    waveform_evaluations=current.waveform_evaluations,
                    seconds=time.perf_counter() - t0,
                    recalculated_cells=total_cells,
                    total_cells=total_cells,
                    cache_evaluations=current.cache_evaluations,
                    cache_hits=current.cache_hits,
                    cache_dedup_hits=current.cache_dedup_hits,
                    cache_persisted_hits=current.cache_persisted_hits,
                    dirty_arcs=current.dirty_arcs,
                    reused_arcs=current.reused_arcs,
                    phase_seconds=dict(current.phase_seconds),
                    provenance_rows=current.provenance_rows,
                )
            )
        best = current
        if checkpoint is not None:
            checkpoint.save(current, best, history, converged=False)
        if after_pass is not None:
            after_pass(1, current)

    while len(history) < config.max_iterations:
        windows = current.state.window_snapshot()
        recalc = None
        if config.esperance and len(history) >= 1:
            recalc = esperance_recalc_cells(
                propagator.design, propagator, current, config.esperance_slack
            )
        with tracer.span(
            "iterative.pass",
            index=len(history) + 1,
            full=recalc is None,
            recalc_cells=len(recalc) if recalc is not None else total_cells,
        ):
            t0 = time.perf_counter()
            next_pass = propagator.run_pass(
                prev_windows=windows,
                recalc_cells=recalc,
                prev_state=current.state if recalc is not None else None,
            )
            record = IterationRecord(
                index=len(history) + 1,
                longest_delay=next_pass.longest_delay,
                waveform_evaluations=next_pass.waveform_evaluations,
                seconds=time.perf_counter() - t0,
                recalculated_cells=len(recalc) if recalc is not None else total_cells,
                total_cells=total_cells,
                cache_evaluations=next_pass.cache_evaluations,
                cache_hits=next_pass.cache_hits,
                cache_dedup_hits=next_pass.cache_dedup_hits,
                cache_persisted_hits=next_pass.cache_persisted_hits,
                dirty_arcs=next_pass.dirty_arcs,
                reused_arcs=next_pass.reused_arcs,
                phase_seconds=dict(next_pass.phase_seconds),
                provenance_rows=next_pass.provenance_rows,
            )
            history.append(record)
            g_recalc.set(record.recalc_fraction)
            g_dirty.set(record.dirty_fraction)
        improved = next_pass.longest_delay < best.longest_delay - config.convergence_tolerance
        # Each pass is individually a valid upper bound, so a delay that
        # climbs back *above* the best bound means the coupling decisions
        # are cycling between passes, not converging.  The loop stops
        # either way (best = min is still correct); the distinction only
        # matters for diagnosis.
        oscillating = (
            not improved
            and next_pass.longest_delay
            > best.longest_delay + config.convergence_tolerance
        )
        if next_pass.longest_delay < best.longest_delay:
            best = next_pass
        current = next_pass
        if checkpoint is not None:
            checkpoint.save(current, best, history, converged=not improved)
        if after_pass is not None:
            after_pass(len(history), current)
        if oscillating:
            c_osc.inc()
            logger.warning(
                "iteration stopped on oscillation, not convergence: pass %d "
                "delay %.6e s is above the best bound %.6e s; reporting the "
                "best bound (history: %s)",
                len(history),
                next_pass.longest_delay,
                best.longest_delay,
                ", ".join(f"{r.longest_delay:.6e}" for r in history),
            )
        if not improved:
            break
    g_passes.set(len(history))
    g_waves.set(c_waves.value - waves_before)
    return IterativeResult(final=best, history=history)


def esperance_recalc_cells(
    design: Design,
    propagator: Propagator,
    pass_result: PassResult,
    slack_fraction: float,
) -> set[str]:
    """Nets on long paths, per the Esperance idea: a backward required-time
    sweep over the *stored events* (pure arithmetic, no waveform work)
    marks every net whose slack is within ``slack_fraction`` of the
    longest-path delay; only their driver cells are recomputed."""
    state = pass_result.state
    horizon = pass_result.longest_delay
    threshold = slack_fraction * horizon
    required: dict[tuple[str, str], float] = defaultdict(lambda: float("inf"))

    circuit = design.circuit
    for endpoint in circuit.timing_endpoints():
        net = endpoint.net
        if net is None:
            continue
        for direction in (RISING, FALLING):
            if state.event(net.name, direction) is not None:
                key = (net.name, direction)
                required[key] = min(required[key], horizon)

    for cell in reversed(propagator.order):
        out_net = cell.output_pin.net
        if out_net is None:
            continue
        for out_direction in (RISING, FALLING):
            out_event = state.event(out_net.name, out_direction)
            if out_event is None:
                continue
            req_out = required[(out_net.name, out_direction)]
            if req_out == float("inf"):
                continue
            in_pins = (
                [cell.pins["CLK"]] if cell.is_sequential else cell.input_pins
            )
            for pin in in_pins:
                in_net = pin.net
                if in_net is None:
                    continue
                in_directions = (
                    (RISING, FALLING)
                    if cell.is_sequential
                    else (opposite(out_direction),)
                )
                for in_direction in in_directions:
                    in_event = state.event(in_net.name, in_direction)
                    if in_event is None:
                        continue
                    arc_delay = out_event.t_cross - in_event.t_cross
                    key = (in_net.name, in_direction)
                    required[key] = min(required[key], req_out - arc_delay)

    recalc: set[str] = set()
    for (net_name, direction), req in required.items():
        event = state.event(net_name, direction)
        if event is None:
            continue
        slack = req - event.t_cross
        if slack <= threshold:
            net = circuit.nets.get(net_name)
            if net is None:
                continue
            driver = net.driver_cell()
            if driver is not None:
                recalc.add(driver.name)
    return recalc
