"""The crosstalk-aware static timing analysis engine (the paper's
contribution)."""

from repro.core.analyzer import CrosstalkSTA, StaResult
from repro.core.constraints import (
    ConstraintReport,
    EndpointSlack,
    HoldReport,
    HoldSlack,
    check_hold,
    check_setup,
    minimum_period,
)
from repro.core.explain import (
    EXPLAIN_SCHEMA,
    explain_result,
    format_explain,
    validate_explain,
)
from repro.core.export import (
    load_json,
    path_to_dict,
    results_to_dict,
    save_json,
    sta_result_to_dict,
)
from repro.core.graph import Provenance, TimingState, evaluation_order
from repro.core.iterative import (
    IterationRecord,
    IterativeResult,
    esperance_recalc_cells,
    run_iterative,
)
from repro.core.modes import AnalysisMode, ClockAggressorModel, StaConfig, WindowCheck
from repro.core.minpath import (
    MinAnalysisMode,
    MinPropagator,
    MinStaResult,
    merge_earliest,
)
from repro.core.netreport import NetExposure, format_net_report, rank_crosstalk_nets
from repro.core.paths import (
    CriticalPath,
    PathStep,
    extract_critical_path,
    k_worst_paths,
    report_timing,
)
from repro.core.propagation import (
    EndpointArrival,
    PassResult,
    Propagator,
    ideal_ramp_event,
)
from repro.core.report import check_mode_ordering, format_table, result_rows
from repro.core.slack import (
    SLACK_SCHEMA,
    SlackResult,
    compute_slack,
    format_slack,
    slack_payload,
    validate_slack,
)

__all__ = [
    "AnalysisMode",
    "ClockAggressorModel",
    "ConstraintReport",
    "CriticalPath",
    "CrosstalkSTA",
    "EXPLAIN_SCHEMA",
    "EndpointArrival",
    "EndpointSlack",
    "HoldReport",
    "HoldSlack",
    "IterationRecord",
    "IterativeResult",
    "MinAnalysisMode",
    "MinPropagator",
    "MinStaResult",
    "NetExposure",
    "PassResult",
    "PathStep",
    "Propagator",
    "Provenance",
    "SLACK_SCHEMA",
    "SlackResult",
    "StaConfig",
    "StaResult",
    "TimingState",
    "WindowCheck",
    "check_hold",
    "check_mode_ordering",
    "check_setup",
    "compute_slack",
    "esperance_recalc_cells",
    "evaluation_order",
    "explain_result",
    "extract_critical_path",
    "format_explain",
    "format_net_report",
    "format_slack",
    "format_table",
    "merge_earliest",
    "report_timing",
    "results_to_dict",
    "save_json",
    "sta_result_to_dict",
    "minimum_period",
    "rank_crosstalk_nets",
    "ideal_ramp_event",
    "k_worst_paths",
    "load_json",
    "path_to_dict",
    "result_rows",
    "run_iterative",
    "slack_payload",
    "validate_explain",
    "validate_slack",
]
