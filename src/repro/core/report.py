"""Result tables in the paper's format.

The paper's Tables 1-3 list, per circuit, the longest-path delay and the
analysis runtime for the five modes, compared against a simulation of the
longest path.  :func:`format_table` renders the same rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analyzer import StaResult
from repro.core.modes import AnalysisMode

MODE_LABELS = {
    AnalysisMode.BEST_CASE: "Best case",
    AnalysisMode.STATIC_DOUBLED: "Static doubled",
    AnalysisMode.WORST_CASE: "Worst case",
    AnalysisMode.ONE_STEP: "One step",
    AnalysisMode.ITERATIVE: "Iterative",
}

MODE_ORDER = [
    AnalysisMode.BEST_CASE,
    AnalysisMode.STATIC_DOUBLED,
    AnalysisMode.WORST_CASE,
    AnalysisMode.ONE_STEP,
    AnalysisMode.ITERATIVE,
]


@dataclass(frozen=True)
class TableRow:
    label: str
    delay_ns: float
    runtime_s: float
    evaluations: int = 0
    passes: int = 1


def result_rows(results: dict[AnalysisMode, StaResult]) -> list[TableRow]:
    rows = []
    for mode in MODE_ORDER:
        if mode not in results:
            continue
        res = results[mode]
        rows.append(
            TableRow(
                label=MODE_LABELS[mode],
                delay_ns=res.longest_delay_ns,
                runtime_s=res.runtime_seconds,
                evaluations=res.waveform_evaluations,
                passes=res.passes,
            )
        )
    return rows


def format_table(
    title: str,
    results: dict[AnalysisMode, StaResult],
    simulation_ns: float | None = None,
    cell_count: int | None = None,
) -> str:
    """Render one paper-style table as text."""
    header = title if cell_count is None else f"{title} ({cell_count} cells)"
    lines = [header, "=" * len(header)]
    lines.append(f"{'Mode':<16} {'Delay [ns]':>11} {'CPU [s]':>9} {'Evals':>9} {'Passes':>7}")
    lines.append("-" * 56)
    for row in result_rows(results):
        lines.append(
            f"{row.label:<16} {row.delay_ns:>11.3f} {row.runtime_s:>9.2f} "
            f"{row.evaluations:>9d} {row.passes:>7d}"
        )
    if simulation_ns is not None:
        lines.append("-" * 56)
        lines.append(f"{'Simulation':<16} {simulation_ns:>11.3f}")
    return "\n".join(lines)


def format_timing_report(
    results: dict[AnalysisMode, StaResult] | StaResult,
) -> str:
    """Per-phase wall-clock and per-pass statistics of finished runs.

    Accepts a single :class:`StaResult` or the ``run_all_modes`` dict; with
    a dict every analyzed mode gets its own section (modes in table order).
    The arc-cache block is printed once at the end: the calculator is
    shared across modes, so its statistics are cumulative.
    """
    if isinstance(results, StaResult):
        results = {results.mode: results}
    ordered = [results[mode] for mode in MODE_ORDER if mode in results]
    ordered += [res for mode, res in results.items() if mode not in MODE_ORDER]
    lines: list[str] = []
    for result in ordered:
        lines.append(f"timing report [{result.mode.value}]")
        if result.slack is not None:
            slack = result.slack
            lines.append(
                f"  slack: {slack.summary()}"
            )
            lines.append(
                f"  slack: TNS {slack.total_negative_slack * 1e12:.1f} ps, "
                f"{slack.violations} failing / {len(slack.endpoints.slacks)} "
                f"endpoints, {len(slack.net_slack)} net / "
                f"{len(slack.arc_slack)} arc slacks "
                f"({slack.runtime_seconds:.3f} s backward pass)"
            )
        total = sum(result.phase_seconds.values())
        for phase, seconds in sorted(
            result.phase_seconds.items(), key=lambda kv: kv[1], reverse=True
        ):
            share = seconds / total if total else 0.0
            lines.append(f"  {phase:20s} {seconds:8.3f} s  ({share:5.1%})")
        for record in result.history:
            # Dedup (in-run canonical sharing) and persistent-cache reuse
            # are reported separately: only the former is this run's work
            # avoidance, the latter was paid for by an earlier run.
            line = (
                f"  pass {record.index}: {record.seconds:.3f} s, "
                f"{record.waveform_evaluations} evals, "
                f"{record.cache_evaluations} solved / "
                f"{record.cache_dedup_hits} dedup "
                f"({record.dedup_ratio:.1%}) / "
                f"{record.cache_persisted_hits} persisted"
            )
            if record.dirty_arcs or record.reused_arcs:
                line += (
                    f", {record.dirty_arcs} dirty / {record.reused_arcs} reused arcs"
                    f" ({record.dirty_fraction:.1%} recalc)"
                )
            lines.append(line)
    stats = ordered[-1].cache_stats if ordered else {}
    if stats:
        lines.append(
            f"  arc cache: {stats['evaluations']} solved, "
            f"{stats['cache_hits']} hits ({stats['hit_rate']:.1%} hit rate: "
            f"{stats.get('dedup_hits', 0)} dedup, "
            f"{stats.get('persisted_hits', 0)} persisted), "
            f"{stats['cached_arcs']} cached"
        )
        if stats.get("signatures"):
            lines.append(
                f"  canonical signatures: {stats['signatures']} distinct stages, "
                f"{stats.get('signature_aliases', 0)} (cell, pin) aliases folded"
            )
        if stats.get("batched_solves"):
            lines.append(
                f"  batch engine: {stats['batched_solves']} vectorized solves"
                + (
                    f", {stats['pool_solves']} via worker pool"
                    if stats.get("pool_solves")
                    else ""
                )
            )
        if stats.get("solver_tier") == "screened":
            tiers = stats.get("tier_counts", {})
            seconds = stats.get("tier_seconds", {})
            escalations = stats.get("escalations", {})
            lines.append(
                "  screened solver: "
                + ", ".join(
                    f"{tier}={tiers.get(tier, 0)}"
                    f" ({seconds.get(tier, 0.0):.3f} s)"
                    for tier in ("surface", "analytical", "newton")
                )
                + f", {stats.get('screen_hits', 0)} screen-cache hits"
            )
            if any(escalations.values()):
                lines.append(
                    "  escalations: "
                    + ", ".join(
                        f"{reason}={count}"
                        for reason, count in escalations.items()
                        if count
                    )
                )
            lines.append(
                f"  screen bank: {stats.get('screen_cells', 0)} cells, "
                f"{stats.get('screen_points', 0)} points "
                f"({stats.get('screen_anchors', 0)} anchors), "
                f"{stats.get('anchor_solves', 0)} anchor / "
                f"{stats.get('coarse_solves', 0)} coarse solves"
            )
        if stats.get("persisted_loads"):
            lines.append(
                f"  persistent cache: {stats['persisted_loads']} arcs loaded from disk"
            )
        if stats.get("stale_rejects"):
            lines.append(
                f"  persistent cache: {stats['stale_rejects']} stale entries rejected"
            )
    return "\n".join(lines)


def check_mode_ordering(
    results: dict[AnalysisMode, StaResult],
    tolerance: float = 1e-12,
) -> list[str]:
    """Verify the invariant ordering of the five bounds; returns a list of
    violation descriptions (empty when all hold):

    best <= iterative <= one-step <= worst, and best <= static-doubled.

    Note: static-doubled versus worst-case is *not* an invariant -- the
    whole point of the paper's comparison is that the passive doubled
    model and the active model rank differently per arc (doubling slows
    every transition, the active model concentrates its impact in the
    coupling drop), so neither bounds the other in general.
    """
    violations = []

    def delay(mode: AnalysisMode) -> float:
        return results[mode].longest_delay

    pairs = [
        (AnalysisMode.BEST_CASE, AnalysisMode.ITERATIVE),
        (AnalysisMode.ITERATIVE, AnalysisMode.ONE_STEP),
        (AnalysisMode.ONE_STEP, AnalysisMode.WORST_CASE),
        (AnalysisMode.BEST_CASE, AnalysisMode.STATIC_DOUBLED),
    ]
    for lo, hi in pairs:
        if lo in results and hi in results and delay(lo) > delay(hi) + tolerance:
            violations.append(
                f"{MODE_LABELS[lo]} ({delay(lo) * 1e9:.3f} ns) exceeds "
                f"{MODE_LABELS[hi]} ({delay(hi) * 1e9:.3f} ns)"
            )
    return violations
