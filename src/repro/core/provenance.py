"""Per-arc provenance ledger.

Every arc that wins a (net, direction) slot during propagation gets one
row recording *how* its number was produced: which solver tier answered
(``newton`` / ``surface`` / ``analytical``), why a screened query
escalated (``outside_region`` / ``error_tolerance`` / ``slack``), where
the result came from (``fresh`` solve, in-run ``dedup``, ``persisted``
cache file, pass-to-pass ``memo``, ``screen_surface`` /
``screen_analytical`` bank, or a ``degraded`` conservative substitute),
the decided coupling treatment with aggressor counts, the pass index,
the interned stage-signature token, and the coupling delta (coupled
minus quiescent half-V_DD crossing; ``None`` where no quiescent solve
exists).

Storage is columnar — parallel lists keyed by row id — matching the
ROADMAP's structure-of-arrays direction and keeping the per-arc cost to
a handful of list appends.  The ledger is pure annotation: delays are
bit-identical with it on or off.
"""

from __future__ import annotations

import sys
from typing import Any, Iterator

# Reuse origins, in the order a result can be served.
ORIGIN_FRESH = "fresh"
ORIGIN_DEDUP = "dedup"
ORIGIN_PERSISTED = "persisted"
ORIGIN_MEMO = "memo"
ORIGIN_SCREEN_SURFACE = "screen_surface"
ORIGIN_SCREEN_ANALYTICAL = "screen_analytical"
ORIGIN_DEGRADED = "degraded"

ORIGINS = (
    ORIGIN_FRESH,
    ORIGIN_DEDUP,
    ORIGIN_PERSISTED,
    ORIGIN_MEMO,
    ORIGIN_SCREEN_SURFACE,
    ORIGIN_SCREEN_ANALYTICAL,
    ORIGIN_DEGRADED,
)

_COLUMNS = (
    "tier",
    "origin",
    "escalation",
    "signature",
    "coupling",
    "aggressors_total",
    "aggressors_active",
    "pass_index",
    "coupling_delta",
)


def _hex(value: float | None) -> str | None:
    return None if value is None else float(value).hex()


def _unhex(text: str | None) -> float | None:
    return None if text is None else float.fromhex(text)


class ProvenanceLedger:
    """Columnar per-arc provenance store (parallel arrays keyed by row id)."""

    __slots__ = tuple(f"_{c}" for c in _COLUMNS)

    def __init__(self) -> None:
        self._tier: list[str] = []
        self._origin: list[str] = []
        self._escalation: list[str | None] = []
        self._signature: list[str] = []
        self._coupling: list[str] = []
        self._aggressors_total: list[int] = []
        self._aggressors_active: list[int] = []
        self._pass_index: list[int] = []
        self._coupling_delta: list[float | None] = []

    def __len__(self) -> int:
        return len(self._tier)

    def append(
        self,
        *,
        tier: str,
        origin: str,
        escalation: str | None,
        signature: str,
        coupling: str,
        aggressors_total: int,
        aggressors_active: int,
        pass_index: int,
        coupling_delta: float | None,
    ) -> int:
        """Record one arc; returns its row id."""
        row = len(self._tier)
        self._tier.append(sys.intern(tier))
        self._origin.append(sys.intern(origin))
        self._escalation.append(
            sys.intern(escalation) if escalation is not None else None
        )
        self._signature.append(sys.intern(signature))
        self._coupling.append(sys.intern(coupling))
        self._aggressors_total.append(aggressors_total)
        self._aggressors_active.append(aggressors_active)
        self._pass_index.append(pass_index)
        self._coupling_delta.append(coupling_delta)
        return row

    def row(self, index: int) -> dict[str, Any]:
        """Materialize one row as a dict (for reports / the explain engine)."""
        return {
            "tier": self._tier[index],
            "origin": self._origin[index],
            "escalation": self._escalation[index],
            "signature": self._signature[index],
            "coupling": self._coupling[index],
            "aggressors_total": self._aggressors_total[index],
            "aggressors_active": self._aggressors_active[index],
            "pass_index": self._pass_index[index],
            "coupling_delta": self._coupling_delta[index],
        }

    def rows(self) -> Iterator[dict[str, Any]]:
        for i in range(len(self._tier)):
            yield self.row(i)

    def counts(self) -> dict[str, dict[str, int]]:
        """Histogram of the categorical columns (tier / origin / coupling)."""
        out: dict[str, dict[str, int]] = {}
        for column in ("tier", "origin", "coupling"):
            tally: dict[str, int] = {}
            for value in getattr(self, f"_{column}"):
                tally[value] = tally.get(value, 0) + 1
            out[column] = dict(sorted(tally.items()))
        return out

    def to_payload(self) -> dict[str, Any]:
        """JSON-safe columnar payload (floats as hex for exactness)."""
        return {
            "tier": list(self._tier),
            "origin": list(self._origin),
            "escalation": list(self._escalation),
            "signature": list(self._signature),
            "coupling": list(self._coupling),
            "aggressors_total": list(self._aggressors_total),
            "aggressors_active": list(self._aggressors_active),
            "pass_index": list(self._pass_index),
            "coupling_delta": [_hex(v) for v in self._coupling_delta],
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "ProvenanceLedger":
        ledger = cls()
        n = len(payload["tier"])
        for column in _COLUMNS:
            values = payload[column]
            if len(values) != n:
                raise ValueError(
                    f"provenance column {column!r} has {len(values)} rows, "
                    f"expected {n}"
                )
        for i in range(n):
            ledger.append(
                tier=payload["tier"][i],
                origin=payload["origin"][i],
                escalation=payload["escalation"][i],
                signature=payload["signature"][i],
                coupling=payload["coupling"][i],
                aggressors_total=payload["aggressors_total"][i],
                aggressors_active=payload["aggressors_active"][i],
                pass_index=payload["pass_index"][i],
                coupling_delta=_unhex(payload["coupling_delta"][i]),
            )
        return ledger
