"""Timing graph: evaluation order and per-net state.

The circuit is translated into a DAG (paper, Section 4) whose vertices are
cell instances.  A combinational cell depends on the drivers of all its
input nets; a flip-flop depends only on the driver of its clock net (its D
input is a capture endpoint, not a propagation dependency) -- this makes
the clock buffer tree evaluate before the flip-flops it clocks, and the
flip-flops before the logic they launch into.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.circuit.netlist import Cell, Circuit, NetlistError
from repro.waveform.pwl import FALLING, RISING
from repro.waveform.ramp import RampEvent


def _dependency_graph(
    circuit: Circuit,
) -> tuple[dict[str, list[str]], dict[str, list[str]]]:
    """Per-cell dependency lists (and the reverse map) of the timing DAG."""
    dependencies: dict[str, list[str]] = {}
    dependents: dict[str, list[str]] = {name: [] for name in circuit.cells}

    for cell in circuit.cells.values():
        if cell.is_sequential:
            dep_nets = [cell.pins["CLK"].net] if cell.pins["CLK"].net is not None else []
        else:
            dep_nets = cell.input_nets()
        deps = []
        for net in dep_nets:
            driver = net.driver_cell()
            if driver is not None:
                deps.append(driver.name)
        dependencies[cell.name] = deps
        for dep in deps:
            dependents[dep].append(cell.name)
    return dependencies, dependents


def evaluation_order(circuit: Circuit) -> list[Cell]:
    """Topological order over all cells (clock buffers, flip-flops,
    combinational logic).  Raises on combinational cycles."""
    dependencies, dependents = _dependency_graph(circuit)
    indegree = {name: len(deps) for name, deps in dependencies.items()}
    ready = deque(sorted(name for name, deg in indegree.items() if deg == 0))
    order: list[Cell] = []
    while ready:
        name = ready.popleft()
        order.append(circuit.cells[name])
        for dependent in dependents[name]:
            indegree[dependent] -= 1
            if indegree[dependent] == 0:
                ready.append(dependent)
    if len(order) != len(circuit.cells):
        stuck = [n for n, d in indegree.items() if d > 0]
        raise NetlistError(
            f"timing graph has a cycle; unresolved cells e.g. {stuck[:5]}"
        )
    return order


def evaluation_levels(circuit: Circuit) -> list[list[Cell]]:
    """ASAP topological levels of the timing DAG.

    Level ``L`` holds every cell whose dependencies all sit in levels
    ``< L``; the cells of one level are electrically independent along
    timing arcs and can be solved as one batch.  Cells within a level are
    sorted by name for determinism.  Flattening the levels yields a valid
    topological order.  Raises on combinational cycles.
    """
    dependencies, dependents = _dependency_graph(circuit)
    indegree = {name: len(deps) for name, deps in dependencies.items()}
    frontier = sorted(name for name, deg in indegree.items() if deg == 0)
    levels: list[list[Cell]] = []
    seen = 0
    while frontier:
        levels.append([circuit.cells[name] for name in frontier])
        seen += len(frontier)
        next_frontier: list[str] = []
        for name in frontier:
            for dependent in dependents[name]:
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    next_frontier.append(dependent)
        frontier = sorted(next_frontier)
    if seen != len(circuit.cells):
        stuck = [n for n, d in indegree.items() if d > 0]
        raise NetlistError(
            f"timing graph has a cycle; unresolved cells e.g. {stuck[:5]}"
        )
    return levels


@dataclass
class Provenance:
    """Which arc produced a net's worst event (for path backtrace)."""

    cell: str
    in_pin: str
    in_net: str
    in_direction: str
    coupled: bool
    c_active: float


@dataclass
class TimingState:
    """Mutable per-pass timing data.

    ``events`` holds the worst-case ramp event per (net, direction) at the
    *driver output* (wire delay is added when a sink consumes the event).
    ``processed`` marks nets whose events are final for this pass --
    the "calculated" predicate of the one-step pseudo-code.
    ``arc_prov`` maps each winning (net, direction) event to its row in
    the propagator's :class:`~repro.core.provenance.ProvenanceLedger`
    (absent when the ledger is disabled).
    """

    events: dict[str, dict[str, RampEvent | None]] = field(default_factory=dict)
    processed: set[str] = field(default_factory=set)
    provenance: dict[tuple[str, str], Provenance] = field(default_factory=dict)
    arc_prov: dict[tuple[str, str], int] = field(default_factory=dict)

    def ensure_net(self, net_name: str) -> dict[str, RampEvent | None]:
        slot = self.events.get(net_name)
        if slot is None:
            slot = {RISING: None, FALLING: None}
            self.events[net_name] = slot
        return slot

    def event(self, net_name: str, direction: str) -> RampEvent | None:
        slot = self.events.get(net_name)
        if slot is None:
            return None
        return slot.get(direction)

    def quiet_time(self, net_name: str, direction: str) -> float:
        """Time after which the net is quiet for ``direction`` transitions,
        assuming the net has been calculated: the merged event's ``t_late``,
        or minus infinity if the net never transitions that way."""
        event = self.event(net_name, direction)
        if event is None:
            return float("-inf")
        return event.t_late

    def quiet_snapshot(self) -> dict[tuple[str, str], float]:
        """Per-(net, direction) quiescent times -- what the iterative
        algorithm stores between passes ("store quiescent times for each
        wire")."""
        snapshot: dict[tuple[str, str], float] = {}
        for net_name, slot in self.events.items():
            for direction, event in slot.items():
                snapshot[(net_name, direction)] = (
                    event.t_late if event is not None else float("-inf")
                )
        return snapshot

    def window_snapshot(self) -> dict[tuple[str, str], tuple[float, float]]:
        """Per-(net, direction) activity windows ``(t_early, t_late)``.

        A net with no event in a direction can never make that transition:
        its window is empty (``(+inf, -inf)``).  Used by the two-sided
        overlap check (an extension of the paper's one-sided comparison).
        """
        snapshot: dict[tuple[str, str], tuple[float, float]] = {}
        for net_name, slot in self.events.items():
            for direction, event in slot.items():
                if event is None:
                    snapshot[(net_name, direction)] = (float("inf"), float("-inf"))
                else:
                    snapshot[(net_name, direction)] = (event.t_early, event.t_late)
        return snapshot
