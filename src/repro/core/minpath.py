"""Min-delay (hold) analysis with same-direction coupling speed-up.

The paper computes the *longest* path and explicitly leaves the dual out
of scope ("switching in the same direction may occur, but this is not
within the scope of this discussion").  This module implements that dual
as an extension: a guaranteed **lower bound** on the earliest arrival at
every capture point, where an aggressor switching in the *same* direction
as the victim injects a helping divider jump (the mirror image of
Section 2's opposing drop).

Conservatism is reversed everywhere relative to the max analysis:

* loads and input slews quantize *down* (faster),
* Elmore wire delay is omitted (it over-estimates; zero is a valid
  lower bound on wire delay),
* unknown aggressors are assumed to *help*,
* per (net, direction) the **earliest** event is kept.

The mode set mirrors the paper's table rows:

* ``NO_COUPLING`` -- all coupling capacitances grounded.  A comparison
  value; *not* a safe lower bound.
* ``WORST`` -- every aggressor always helps: the safe, pessimistic bound.
* ``ONE_STEP`` -- an aggressor that is provably quiet before the victim's
  earliest possible activity cannot help (mirror of Section 5.1).
* ``ITERATIVE`` -- the one-step pass repeated with stored windows until
  the bound stops increasing (mirror of Section 5.2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum

from repro.circuit.netlist import Cell, Pin
from repro.core.graph import TimingState, evaluation_order
from repro.core.modes import ClockAggressorModel, StaConfig
from repro.core.propagation import EndpointArrival, ideal_ramp_event
from repro.flow.design import Design
from repro.waveform.coupling import CouplingLoad
from repro.waveform.gatedelay import GateDelayCalculator
from repro.waveform.pwl import FALLING, RISING, opposite
from repro.waveform.ramp import RampEvent


class MinAnalysisMode(Enum):
    """Coupling treatments of the min-delay analysis."""

    NO_COUPLING = "min_no_coupling"
    WORST = "min_worst"
    ONE_STEP = "min_one_step"
    ITERATIVE = "min_iterative"

    @property
    def is_window_based(self) -> bool:
        return self in (MinAnalysisMode.ONE_STEP, MinAnalysisMode.ITERATIVE)


def merge_earliest(a: RampEvent | None, b: RampEvent | None) -> RampEvent | None:
    """Earliest-envelope merge: earliest crossing and activity, fastest
    transition, latest quiescence (the activity window is the union)."""
    if a is None:
        return b
    if b is None:
        return a
    if a.direction != b.direction:
        raise ValueError(f"cannot merge {a.direction} with {b.direction}")
    return RampEvent(
        direction=a.direction,
        t_cross=min(a.t_cross, b.t_cross),
        transition=min(a.transition, b.transition),
        t_early=min(a.t_early, b.t_early),
        t_late=max(a.t_late, b.t_late),
    )


@dataclass
class MinPassResult:
    """Outcome of one min-delay propagation pass."""

    state: TimingState
    arrivals: list[EndpointArrival] = field(default_factory=list)
    shortest_delay: float = float("inf")
    critical_endpoint: str = ""
    critical_direction: str = ""
    waveform_evaluations: int = 0
    arcs_processed: int = 0

    def arrival_map(self) -> dict[tuple[str, str], float]:
        return {(a.endpoint, a.direction): a.event.t_cross for a in self.arrivals}


@dataclass
class MinStaResult:
    """Result of a min-delay analysis run."""

    mode: MinAnalysisMode
    design_name: str
    shortest_delay: float
    critical_endpoint: str
    critical_direction: str
    runtime_seconds: float
    waveform_evaluations: int
    passes: int
    final_pass: MinPassResult | None = None

    @property
    def shortest_delay_ns(self) -> float:
        return self.shortest_delay * 1e9

    def arrival_map(self) -> dict[tuple[str, str], float]:
        assert self.final_pass is not None
        return self.final_pass.arrival_map()


class MinPropagator:
    """Earliest-arrival propagation with helping coupling."""

    def __init__(
        self,
        design: Design,
        config: StaConfig | None = None,
        calculator: GateDelayCalculator | None = None,
    ):
        self.design = design
        self.config = config if config is not None else StaConfig()
        self.calculator = (
            calculator
            if calculator is not None
            else GateDelayCalculator(process=design.process)
        )
        self.order = evaluation_order(design.circuit)
        self._clock_nets = {
            name for name, net in design.circuit.nets.items() if net.is_clock
        }

    # -- pass driver -----------------------------------------------------------

    def run_pass(
        self,
        mode: MinAnalysisMode,
        prev_windows: dict[tuple[str, str], tuple[float, float]] | None = None,
    ) -> MinPassResult:
        state = TimingState()
        result = MinPassResult(state=state)
        self._init_sources(state)

        for cell in self.order:
            out_net = cell.output_pin.net
            if out_net is None:
                continue
            if cell.is_sequential:
                self._process_flip_flop(cell, mode, state, prev_windows, result)
            else:
                self._process_gate(cell, mode, state, prev_windows, result)
            state.processed.add(out_net.name)

        self._collect_arrivals(state, result)
        return result

    def run(self, mode: MinAnalysisMode) -> MinStaResult:
        """Run one min-analysis mode to completion."""
        t0 = time.perf_counter()
        passes = 1
        final = self.run_pass(mode)
        if mode is MinAnalysisMode.ITERATIVE:
            best = final
            while passes < self.config.max_iterations:
                windows = best.state.window_snapshot()
                nxt = self.run_pass(MinAnalysisMode.ITERATIVE, prev_windows=windows)
                passes += 1
                improved = (
                    nxt.shortest_delay
                    > best.shortest_delay + self.config.convergence_tolerance
                )
                if nxt.shortest_delay > best.shortest_delay:
                    best = nxt
                if not improved:
                    break
            final = best
        return MinStaResult(
            mode=mode,
            design_name=self.design.name,
            shortest_delay=final.shortest_delay,
            critical_endpoint=final.critical_endpoint,
            critical_direction=final.critical_direction,
            runtime_seconds=time.perf_counter() - t0,
            waveform_evaluations=final.waveform_evaluations,
            passes=passes,
            final_pass=final,
        )

    # -- internals --------------------------------------------------------------

    def _init_sources(self, state: TimingState) -> None:
        process = self.design.process
        tt = self.config.input_transition
        for port in self.design.circuit.inputs.values():
            net = port.net
            if net is None:
                continue
            slot = state.ensure_net(net.name)
            directions = (RISING,) if net.is_clock else (RISING, FALLING)
            for direction in directions:
                slot[direction] = ideal_ramp_event(
                    direction, 0.0, tt, process.vdd, process.v_th_model
                )
            state.processed.add(net.name)

    def _process_gate(self, cell: Cell, mode, state, prev_windows, result) -> None:
        out_net = cell.output_pin.net
        out_slot = state.ensure_net(out_net.name)
        for pin in cell.input_pins:
            in_net = pin.net
            if in_net is None:
                continue
            for direction in (RISING, FALLING):
                event = state.event(in_net.name, direction)
                if event is None:
                    continue
                # No wire delay: zero is the only guaranteed lower bound.
                out_event = self._compute_output_event(
                    cell, pin.name, event, out_net.name, mode, state, prev_windows, result
                )
                out_slot[out_event.direction] = merge_earliest(
                    out_slot[out_event.direction], out_event
                )

    def _process_flip_flop(self, cell: Cell, mode, state, prev_windows, result) -> None:
        process = self.design.process
        out_net = cell.output_pin.net
        out_slot = state.ensure_net(out_net.name)
        clk_net = cell.pins["CLK"].net
        clk_event = None
        if clk_net is not None:
            clk_event = state.event(clk_net.name, RISING) or state.event(
                clk_net.name, FALLING
            )
        if clk_event is None:
            clk_event = ideal_ramp_event(
                RISING, 0.0, self.config.input_transition, process.vdd, process.v_th_model
            )
        launch_cross = clk_event.t_cross + cell.ctype.clk_to_q
        for out_direction in (RISING, FALLING):
            internal = ideal_ramp_event(
                opposite(out_direction),
                launch_cross - 0.5 * clk_event.transition,
                clk_event.transition,
                process.vdd,
                process.v_th_model,
            )
            out_event = self._compute_output_event(
                cell, "A", internal, out_net.name, mode, state, prev_windows, result
            )
            out_slot[out_event.direction] = merge_earliest(
                out_slot[out_event.direction], out_event
            )

    def _compute_output_event(
        self, cell, pin_name, arrival, out_net_name, mode, state, prev_windows, result
    ) -> RampEvent:
        load = self.design.loads[out_net_name]
        result.arcs_processed += 1

        if mode is MinAnalysisMode.NO_COUPLING or not load.couplings:
            result.waveform_evaluations += 1
            arc = self.calculator.compute_arc_relative(
                cell.ctype,
                pin_name,
                arrival.direction,
                arrival.transition,
                CouplingLoad(c_ground=load.c_fixed + load.c_coupling_total),
                quantize_down=True,
            )
            return arc.to_event(arrival.t_cross - 0.5 * arrival.transition)

        if mode is MinAnalysisMode.WORST:
            c_helping = load.c_coupling_total
        else:
            c_helping = self._helping_cap(
                cell, pin_name, arrival, load, state, prev_windows, result
            )

        result.waveform_evaluations += 1
        arc = self.calculator.compute_arc_relative(
            cell.ctype,
            pin_name,
            arrival.direction,
            arrival.transition,
            CouplingLoad(
                c_ground=load.c_fixed + (load.c_coupling_total - c_helping),
                c_couple_active=c_helping,
            ),
            aiding=c_helping > 0,
            quantize_down=True,
        )
        return arc.to_event(arrival.t_cross - 0.5 * arrival.transition)

    def _helping_cap(
        self, cell, pin_name, arrival, load, state, prev_windows, result
    ) -> float:
        """One-step decision, mirrored: compute the fastest (all-helping)
        waveform; an aggressor that is provably quiet before even that
        waveform's earliest activity cannot help."""
        result.waveform_evaluations += 1
        fastest = self.calculator.compute_arc_relative(
            cell.ctype,
            pin_name,
            arrival.direction,
            arrival.transition,
            CouplingLoad(c_ground=load.c_fixed, c_couple_active=load.c_coupling_total),
            aiding=True,
            quantize_down=True,
        ).to_event(arrival.t_cross - 0.5 * arrival.transition)
        t_earliest = fastest.t_early
        victim_direction = fastest.direction  # aggressors help in the SAME direction
        guard = self.config.guard

        helping = 0.0
        for other, cap in load.couplings.items():
            t_early, t_quiet = self._aggressor_window(
                other, victim_direction, state, prev_windows
            )
            if t_quiet > t_earliest - guard:
                helping += cap
        return helping

    def _aggressor_window(self, net_name, direction, state, prev_windows):
        if (
            net_name in self._clock_nets
            and self.config.clock_model is ClockAggressorModel.ALWAYS
        ):
            return float("-inf"), float("inf")
        if net_name in state.processed:
            event = state.event(net_name, direction)
            if event is None:
                return float("inf"), float("-inf")
            return event.t_early, event.t_late
        if prev_windows is not None:
            return prev_windows.get((net_name, direction), (float("inf"), float("-inf")))
        return float("-inf"), float("inf")

    def _collect_arrivals(self, state: TimingState, result: MinPassResult) -> None:
        for endpoint in self.design.circuit.timing_endpoints():
            net = endpoint.net
            if net is None:
                continue
            terminal = (
                endpoint.full_name if isinstance(endpoint, Pin) else endpoint.name
            )
            for direction in (RISING, FALLING):
                event = state.event(net.name, direction)
                if event is None:
                    continue
                result.arrivals.append(
                    EndpointArrival(endpoint=terminal, direction=direction, event=event)
                )
                if event.t_cross < result.shortest_delay:
                    result.shortest_delay = event.t_cross
                    result.critical_endpoint = terminal
                    result.critical_direction = direction
