"""Clock-period constraint checking.

The paper computes the longest path; a timing *verifier* additionally
checks it against a clock period (Section 4's cited verifiers all do).
This module turns a finished analysis pass into per-endpoint setup slacks
and a pass/fail verdict for a given clock period, and finds the minimum
feasible period.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.core.propagation import PassResult

if TYPE_CHECKING:  # import cycle: analyzer -> slack -> constraints
    from repro.core.analyzer import StaResult


def _default_config():
    """The config the constraint defaults live on (single source of
    truth for setup/hold times; imported lazily to avoid a cycle)."""
    from repro.core.modes import StaConfig

    return StaConfig()


@dataclass(frozen=True)
class EndpointSlack:
    """Setup slack of one capture point."""

    endpoint: str
    direction: str
    arrival: float
    required: float

    @property
    def slack(self) -> float:
        return self.required - self.arrival

    @property
    def met(self) -> bool:
        return self.slack >= 0.0


@dataclass
class ConstraintReport:
    """Setup check of a whole analysis run at one clock period."""

    clock_period: float
    setup_time: float
    slacks: list[EndpointSlack] = field(default_factory=list)

    @property
    def worst(self) -> EndpointSlack:
        if not self.slacks:
            raise ValueError("no endpoints to report")
        return min(self.slacks, key=lambda s: s.slack)

    @property
    def met(self) -> bool:
        return all(s.met for s in self.slacks)

    def failing(self) -> list[EndpointSlack]:
        return sorted(
            (s for s in self.slacks if not s.met), key=lambda s: s.slack
        )

    def summary(self) -> str:
        worst = self.worst
        status = "MET" if self.met else f"VIOLATED ({len(self.failing())} endpoints)"
        return (
            f"clock {self.clock_period * 1e9:.3f} ns, setup "
            f"{self.setup_time * 1e12:.0f} ps: {status}; worst slack "
            f"{worst.slack * 1e12:+.1f} ps at {worst.endpoint} ({worst.direction})"
        )


def check_setup(
    result: "StaResult | PassResult",
    clock_period: float,
    setup_time: float | None = None,
) -> ConstraintReport:
    """Check every capture point against ``clock_period``.

    Flip-flop D inputs must settle a setup time before the next clock
    edge; primary outputs are required at the period boundary.  The
    default setup time is ``StaConfig.setup_time``.
    """
    if setup_time is None:
        setup_time = _default_config().setup_time
    if clock_period <= 0:
        raise ValueError("clock period must be positive")
    pass_result = getattr(result, "final_pass", result)
    assert pass_result is not None
    report = ConstraintReport(clock_period=clock_period, setup_time=setup_time)
    for arrival in pass_result.arrivals:
        is_ff_input = "/" in arrival.endpoint
        required = clock_period - (setup_time if is_ff_input else 0.0)
        report.slacks.append(
            EndpointSlack(
                endpoint=arrival.endpoint,
                direction=arrival.direction,
                arrival=arrival.event.t_cross,
                required=required,
            )
        )
    return report


def minimum_period(
    result: "StaResult | PassResult",
    setup_time: float | None = None,
) -> float:
    """Smallest clock period at which every setup check passes."""
    if setup_time is None:
        setup_time = _default_config().setup_time
    pass_result = getattr(result, "final_pass", result)
    assert pass_result is not None
    worst = 0.0
    for arrival in pass_result.arrivals:
        is_ff_input = "/" in arrival.endpoint
        needed = arrival.event.t_cross + (setup_time if is_ff_input else 0.0)
        worst = max(worst, needed)
    return worst


@dataclass(frozen=True)
class HoldSlack:
    """Hold slack of one flip-flop data input: positive when the earliest
    arrival lands after the hold window."""

    endpoint: str
    direction: str
    earliest_arrival: float
    hold_time: float

    @property
    def slack(self) -> float:
        return self.earliest_arrival - self.hold_time

    @property
    def met(self) -> bool:
        return self.slack >= 0.0


@dataclass
class HoldReport:
    """Hold check against a min-delay analysis (same-edge capture)."""

    hold_time: float
    slacks: list[HoldSlack] = field(default_factory=list)

    @property
    def worst(self) -> HoldSlack:
        if not self.slacks:
            raise ValueError("no endpoints to report")
        return min(self.slacks, key=lambda s: s.slack)

    @property
    def met(self) -> bool:
        return all(s.met for s in self.slacks)

    def failing(self) -> list[HoldSlack]:
        return sorted((s for s in self.slacks if not s.met), key=lambda s: s.slack)


def check_hold(min_result, hold_time: float | None = None) -> HoldReport:
    """Check every flip-flop data input against the hold requirement.

    ``min_result`` is a :class:`repro.core.minpath.MinStaResult` (or its
    final pass): data launched at the clock edge must not reach a capture
    flip-flop before ``hold_time`` after that same edge (default:
    ``StaConfig.hold_time``).  Only flip-flop inputs are checked
    (primary outputs have no hold requirement).

    The check assumes a zero-skew capture clock (all edges at t = 0); the
    launch side does use the earliest clock-tree arrival, so positive
    insertion skew is covered conservatively on that side.
    """
    if hold_time is None:
        hold_time = _default_config().hold_time
    pass_result = getattr(min_result, "final_pass", min_result)
    report = HoldReport(hold_time=hold_time)
    for arrival in pass_result.arrivals:
        if "/" not in arrival.endpoint:
            continue
        report.slacks.append(
            HoldSlack(
                endpoint=arrival.endpoint,
                direction=arrival.direction,
                earliest_arrival=arrival.event.t_cross,
                hold_time=hold_time,
            )
        )
    return report
