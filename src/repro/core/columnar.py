"""Columnar structure-of-arrays timing core.

The object core (:mod:`repro.core.propagation`) walks per-object Python
structures: every pass re-creates ``_ArcTask`` dataclasses, shifts
:class:`~repro.waveform.ramp.RampEvent` objects through frozen-dataclass
``replace`` calls, and keys its memo and state by interned strings.  At
full benchmark scale (s35932/s38417/s38584 at scale 1.0) that per-arc
object traffic dominates the runtime: the batched Newton solver is
amortized to ~0.1 ms per distinct situation while the pass spends
several times that gathering and re-boxing objects per *arc*.

This module compiles a prepared design once per session into dense
int32/float64 id arrays (:class:`CompiledDesign`) and keeps the per-pass
timing data in numpy columns indexed by those ids
(:class:`ColumnTimingState`):

* **Id spaces.**  Nets, cells and timing arcs are interned into three
  dense id ranges.  An *arc* is the static identity the object core
  keys its delta-driven memo by -- ``(cell, input pin, input
  direction)`` -- enumerated at compile time in exactly the order the
  object core would create its ``_ArcTask`` list (levels in topological
  order, cells name-sorted within a level, input pins in declaration
  order, rising before falling; flip-flops enumerate by output
  direction).  Ids are therefore stable across re-compiles of an
  identical circuit.
* **CSR level index.**  ``level_indptr`` slices the arc arrays into one
  contiguous slab per topological level, so a pass processes each level
  with vectorized slab operations instead of gathered objects.  The
  coupling neighbours of every net are a second CSR
  (``coup_indptr``/``coup_net``/``coup_cap``) preserving the extraction
  dict's order, which keeps the float accumulation order of
  :func:`~repro.waveform.coupling.aggregate_load` bit-identical.
* **Dirty masks.**  The incremental engine's per-arc memo becomes a set
  of parallel columns (``memo_valid``/``memo_tt``/``memo_load``/...);
  fingerprint comparison is one vectorized exact-equality compare over
  the level slab, and the dirty set is the resulting boolean mask.
* **State columns.**  Arrival events live in ``(2, n_nets)`` float64
  columns (rising row 0, falling row 1) plus validity masks;
  ``quiet_snapshot()``/``window_snapshot()`` are O(1) views over these
  columns instead of per-pass dict rebuilds.

The object API -- ``state.events`` / ``state.processed`` /
``state.provenance`` / ``state.arc_prov`` and per-net
:class:`RampEvent` access -- stays available as thin lazy views, so the
service, explain, report and checkpoint layers run unchanged on either
core.  The exact tier is ``float.hex()``-identical to the object core in
all five analysis modes (pinned by ``tests/test_core_engine_equivalence``).
"""

from __future__ import annotations

import time
from typing import Iterator, Mapping

import numpy as np

from repro.circuit.netlist import Cell
from repro.core.graph import Provenance, evaluation_levels
from repro.flow.design import Design
from repro.waveform.pwl import FALLING, RISING
from repro.waveform.ramp import RampEvent

# Direction codes of the column layout: row 0 = rising, row 1 = falling.
DIRECTIONS = (RISING, FALLING)
DIR_INDEX = {RISING: 0, FALLING: 1}


class CompiledDesign:
    """Static structure-of-arrays view of a prepared design.

    Built once per analyzer session (``compile_seconds`` records the
    cost) and shared by every columnar propagator over the same design;
    holds no per-pass state.
    """

    def __init__(self, design: Design):
        t0 = time.perf_counter()
        self.design = design
        circuit = design.circuit
        loads = design.loads

        # -- net id space ---------------------------------------------------
        self.net_names: list[str] = list(circuit.nets.keys())
        self.net_id: dict[str, int] = {
            name: i for i, name in enumerate(self.net_names)
        }
        n_nets = len(self.net_names)
        self.n_nets = n_nets
        self.net_c_fixed = np.zeros(n_nets, dtype=np.float64)
        self.net_cc_total = np.zeros(n_nets, dtype=np.float64)
        self.net_is_clock = np.zeros(n_nets, dtype=bool)

        # Coupling CSR, preserving each load's dict order (the float
        # accumulation order of aggregate_load depends on it).
        coup_counts = np.zeros(n_nets, dtype=np.int64)
        coup_net_rows: list[list[int]] = [[] for _ in range(n_nets)]
        coup_cap_rows: list[list[float]] = [[] for _ in range(n_nets)]
        coup_name_rows: list[list[str]] = [[] for _ in range(n_nets)]
        for name, net in circuit.nets.items():
            i = self.net_id[name]
            self.net_is_clock[i] = net.is_clock
            load = loads.get(name)
            if load is None:
                continue
            self.net_c_fixed[i] = load.c_fixed
            # Same accumulation as NetLoad.c_coupling_total (dict order).
            self.net_cc_total[i] = sum(load.couplings.values())
            coup_counts[i] = len(load.couplings)
            for other, cap in load.couplings.items():
                coup_net_rows[i].append(self.net_id.get(other, -1))
                coup_cap_rows[i].append(cap)
                coup_name_rows[i].append(other)
        self.coup_indptr = np.zeros(n_nets + 1, dtype=np.int64)
        np.cumsum(coup_counts, out=self.coup_indptr[1:])
        nnz = int(self.coup_indptr[-1])
        self.coup_net = np.empty(nnz, dtype=np.int64)
        self.coup_cap = np.empty(nnz, dtype=np.float64)
        self.coup_name: list[str] = []
        for i in range(n_nets):
            lo = int(self.coup_indptr[i])
            hi = int(self.coup_indptr[i + 1])
            self.coup_net[lo:hi] = coup_net_rows[i]
            self.coup_cap[lo:hi] = coup_cap_rows[i]
            self.coup_name.extend(coup_name_rows[i])

        # -- cell id space (flattened topological levels) -------------------
        self.levels = evaluation_levels(circuit)
        self.cells: list[Cell] = [c for level in self.levels for c in level]
        self.cell_id: dict[str, int] = {
            c.name: i for i, c in enumerate(self.cells)
        }
        n_cells = len(self.cells)
        self.n_cells = n_cells
        self.cell_out_net = np.full(n_cells, -1, dtype=np.int64)
        self.cell_is_ff = np.zeros(n_cells, dtype=bool)
        self.cell_arc_begin = np.zeros(n_cells, dtype=np.int64)
        self.cell_arc_end = np.zeros(n_cells, dtype=np.int64)
        self.cell_clk_net = np.full(n_cells, -1, dtype=np.int64)
        self.cell_clk_to_q = np.zeros(n_cells, dtype=np.float64)
        self.cell_clk_terminal: list[str | None] = [None] * n_cells

        # -- arc table (object-core task order) -----------------------------
        arc_cell: list[int] = []
        arc_out_net: list[int] = []
        arc_in_net: list[int] = []
        arc_in_dir: list[int] = []
        arc_elmore: list[float] = []
        arc_is_ff: list[bool] = []
        self.arc_pin: list[str] = []
        self.arc_prov_pin: list[str] = []
        self.arc_prov_net: list[str] = []
        level_counts: list[int] = []
        for level in self.levels:
            level_start = len(arc_cell)
            for cell in level:
                ci = self.cell_id[cell.name]
                out_net = cell.output_pin.net
                if out_net is None:
                    continue
                oi = self.net_id[out_net.name]
                self.cell_out_net[ci] = oi
                self.cell_arc_begin[ci] = len(arc_cell)
                if cell.is_sequential:
                    self.cell_is_ff[ci] = True
                    self.cell_clk_to_q[ci] = cell.ctype.clk_to_q
                    clk_pin = cell.pins["CLK"]
                    clk_net = clk_pin.net
                    if clk_net is not None:
                        self.cell_clk_net[ci] = self.net_id[clk_net.name]
                        self.cell_clk_terminal[ci] = clk_pin.full_name
                    clk_name = clk_net.name if clk_net is not None else ""
                    # Launch tasks enumerate by output direction; the
                    # internal arrival direction is the opposite one.
                    for out_direction in DIRECTIONS:
                        arc_cell.append(ci)
                        arc_out_net.append(oi)
                        arc_in_net.append(
                            self.cell_clk_net[ci]
                            if clk_net is not None
                            else -1
                        )
                        arc_in_dir.append(1 - DIR_INDEX[out_direction])
                        arc_elmore.append(0.0)
                        arc_is_ff.append(True)
                        self.arc_pin.append("A")
                        self.arc_prov_pin.append("CLK")
                        self.arc_prov_net.append(clk_name)
                else:
                    for pin in cell.input_pins:
                        in_net = pin.net
                        if in_net is None:
                            continue
                        elmore = loads[in_net.name].sink_elmore.get(
                            pin.full_name, 0.0
                        )
                        ii = self.net_id[in_net.name]
                        for direction in DIRECTIONS:
                            arc_cell.append(ci)
                            arc_out_net.append(oi)
                            arc_in_net.append(ii)
                            arc_in_dir.append(DIR_INDEX[direction])
                            arc_elmore.append(elmore)
                            arc_is_ff.append(False)
                            self.arc_pin.append(pin.name)
                            self.arc_prov_pin.append(pin.name)
                            self.arc_prov_net.append(in_net.name)
                self.cell_arc_end[ci] = len(arc_cell)
            level_counts.append(len(arc_cell) - level_start)

        self.n_arcs = len(arc_cell)
        self.arc_cell = np.asarray(arc_cell, dtype=np.int64)
        self.arc_out_net = np.asarray(arc_out_net, dtype=np.int64)
        self.arc_in_net = np.asarray(arc_in_net, dtype=np.int64)
        self.arc_in_dir = np.asarray(arc_in_dir, dtype=np.int64)
        self.arc_elmore = np.asarray(arc_elmore, dtype=np.float64)
        self.arc_is_ff = np.asarray(arc_is_ff, dtype=bool)
        self.level_indptr = np.zeros(len(self.levels) + 1, dtype=np.int64)
        np.cumsum(np.asarray(level_counts, dtype=np.int64), out=self.level_indptr[1:])
        self.arc_n_coup = (
            self.coup_indptr[self.arc_out_net + 1]
            - self.coup_indptr[self.arc_out_net]
        )
        # Memo-identity index: the object core's (cell, pin, direction)
        # memo key of each arc id (warm-start migration across designs).
        self.arc_key_index: dict[tuple[str, str, str], int] = {}
        for a in range(self.n_arcs):
            cell = self.cells[self.arc_cell[a]]
            self.arc_key_index[
                (cell.name, self.arc_pin[a], DIRECTIONS[self.arc_in_dir[a]])
            ] = a
        self.compile_seconds = time.perf_counter() - t0


def compile_design(design: Design) -> CompiledDesign:
    """Intern a prepared design into the columnar id spaces."""
    return CompiledDesign(design)


# -- lazy object views over the columns --------------------------------------


class _SlotView(Mapping):
    """One net's ``{direction: RampEvent | None}`` mapping."""

    __slots__ = ("_state", "_net")

    def __init__(self, state: "ColumnTimingState", net: int):
        self._state = state
        self._net = net

    def __getitem__(self, direction: str) -> RampEvent | None:
        return self._state._event_at(DIR_INDEX[direction], self._net)

    def __setitem__(self, direction: str, event: RampEvent) -> None:
        self._state.set_event(
            DIR_INDEX[direction],
            self._net,
            event.t_cross,
            event.transition,
            event.t_early,
            event.t_late,
        )

    def __iter__(self) -> Iterator[str]:
        return iter(DIRECTIONS)

    def __len__(self) -> int:
        return 2

    def get(self, direction, default=None):
        idx = DIR_INDEX.get(direction)
        if idx is None:
            return default
        return self._state._event_at(idx, self._net)


class _EventsView(Mapping):
    """``state.events`` compatibility view: net name -> slot mapping."""

    __slots__ = ("_state",)

    def __init__(self, state: "ColumnTimingState"):
        self._state = state

    def __getitem__(self, net_name: str) -> _SlotView:
        state = self._state
        net = state.compiled.net_id[net_name]
        if not state.present[net]:
            raise KeyError(net_name)
        return _SlotView(state, net)

    def get(self, net_name, default=None):
        state = self._state
        net = state.compiled.net_id.get(net_name)
        if net is None or not state.present[net]:
            return default
        return _SlotView(state, net)

    def __contains__(self, net_name) -> bool:
        net = self._state.compiled.net_id.get(net_name)
        return net is not None and bool(self._state.present[net])

    def __iter__(self) -> Iterator[str]:
        names = self._state.compiled.net_names
        for net in np.nonzero(self._state.present)[0]:
            yield names[net]

    def __len__(self) -> int:
        return int(self._state.present.sum())


class _ProcessedView:
    """``state.processed`` compatibility view (set-like over the mask)."""

    __slots__ = ("_state",)

    def __init__(self, state: "ColumnTimingState"):
        self._state = state

    def add(self, net_name: str) -> None:
        self._state.processed_mask[self._state.compiled.net_id[net_name]] = True

    def __contains__(self, net_name) -> bool:
        net = self._state.compiled.net_id.get(net_name)
        return net is not None and bool(self._state.processed_mask[net])

    def __iter__(self) -> Iterator[str]:
        names = self._state.compiled.net_names
        for net in np.nonzero(self._state.processed_mask)[0]:
            yield names[net]

    def __len__(self) -> int:
        return int(self._state.processed_mask.sum())


class _ProvenanceView(Mapping):
    """``state.provenance`` view: (net, direction) -> :class:`Provenance`.

    Winners are stored as arc ids plus the per-win dynamic fields
    (coupled flag, input direction); the :class:`Provenance` object is
    materialized on access.  ``overrides`` holds entries copied from a
    non-columnar previous state (checkpoint resume).
    """

    __slots__ = ("_state",)

    def __init__(self, state: "ColumnTimingState"):
        self._state = state

    def _materialize(self, d: int, net: int) -> Provenance | None:
        state = self._state
        arc = int(state.win_arc[d, net])
        if arc < 0:
            return None
        compiled = state.compiled
        return Provenance(
            cell=compiled.cells[compiled.arc_cell[arc]].name,
            in_pin=compiled.arc_prov_pin[arc],
            in_net=compiled.arc_prov_net[arc],
            in_direction=DIRECTIONS[state.win_prov_dir[d, net]],
            coupled=bool(state.win_coupled[d, net]),
            c_active=0.0,
        )

    def get(self, key, default=None):
        state = self._state
        override = state.prov_overrides.get(key)
        if override is not None:
            return override
        net = state.compiled.net_id.get(key[0])
        d = DIR_INDEX.get(key[1])
        if net is None or d is None:
            return default
        prov = self._materialize(d, net)
        return prov if prov is not None else default

    def __getitem__(self, key) -> Provenance:
        prov = self.get(key)
        if prov is None:
            raise KeyError(key)
        return prov

    def __iter__(self) -> Iterator[tuple[str, str]]:
        state = self._state
        names = state.compiled.net_names
        seen = set(state.prov_overrides)
        yield from state.prov_overrides
        for d, net in zip(*np.nonzero(state.win_arc >= 0)):
            key = (names[net], DIRECTIONS[d])
            if key not in seen:
                yield key

    def __len__(self) -> int:
        return sum(1 for _ in self)


class _ArcProvView(Mapping):
    """``state.arc_prov`` view: (net, direction) -> ledger row id."""

    __slots__ = ("_state",)

    def __init__(self, state: "ColumnTimingState"):
        self._state = state

    def get(self, key, default=None):
        state = self._state
        net = state.compiled.net_id.get(key[0])
        d = DIR_INDEX.get(key[1])
        if net is None or d is None:
            return default
        row = int(state.aprov_row[d, net])
        return row if row >= 0 else default

    def __getitem__(self, key) -> int:
        row = self.get(key)
        if row is None:
            raise KeyError(key)
        return row

    def __iter__(self) -> Iterator[tuple[str, str]]:
        state = self._state
        names = state.compiled.net_names
        for d, net in zip(*np.nonzero(state.aprov_row >= 0)):
            yield (names[net], DIRECTIONS[d])

    def __len__(self) -> int:
        return int((self._state.aprov_row >= 0).sum())


class QuietSnapshotView(Mapping):
    """O(1) ``quiet_snapshot()``: (net, direction) -> quiescent time.

    Backed directly by the state columns -- nothing is copied.  The
    state a snapshot is taken from is final (each pass builds a fresh
    state object), so the view is stable.
    """

    __slots__ = ("_state",)

    def __init__(self, state: "ColumnTimingState"):
        self._state = state

    def get(self, key, default=None):
        state = self._state
        net = state.compiled.net_id.get(key[0])
        d = DIR_INDEX.get(key[1])
        if net is None or d is None or not state.present[net]:
            return default
        if not state.valid[d, net]:
            return float("-inf")
        return float(state.ev_tl[d, net])

    def __getitem__(self, key) -> float:
        value = self.get(key)
        if value is None:
            raise KeyError(key)
        return value

    def __iter__(self) -> Iterator[tuple[str, str]]:
        state = self._state
        names = state.compiled.net_names
        for net in np.nonzero(state.present)[0]:
            for direction in DIRECTIONS:
                yield (names[net], direction)

    def __len__(self) -> int:
        return 2 * int(self._state.present.sum())


class WindowSnapshotView(Mapping):
    """O(1) ``window_snapshot()``: (net, direction) -> (t_early, t_late)."""

    __slots__ = ("_state",)

    def __init__(self, state: "ColumnTimingState"):
        self._state = state

    @property
    def state(self) -> "ColumnTimingState":
        return self._state

    def get(self, key, default=None):
        state = self._state
        net = state.compiled.net_id.get(key[0])
        d = DIR_INDEX.get(key[1])
        if net is None or d is None or not state.present[net]:
            return default
        if not state.valid[d, net]:
            return (float("inf"), float("-inf"))
        return (float(state.ev_te[d, net]), float(state.ev_tl[d, net]))

    def __getitem__(self, key) -> tuple[float, float]:
        value = self.get(key)
        if value is None:
            raise KeyError(key)
        return value

    def __iter__(self) -> Iterator[tuple[str, str]]:
        state = self._state
        names = state.compiled.net_names
        for net in np.nonzero(state.present)[0]:
            for direction in DIRECTIONS:
                yield (names[net], direction)

    def __len__(self) -> int:
        return 2 * int(self._state.present.sum())


class ColumnTimingState:
    """Column-backed drop-in for :class:`repro.core.graph.TimingState`.

    Events are ``(2, n_nets)`` float64 columns (row 0 rising, row 1
    falling) plus boolean validity/presence masks; the object API
    (``events``/``processed``/``provenance``/``arc_prov``, ``event()``,
    the snapshot methods) is served by thin lazy views so every
    downstream consumer -- checkpoints, the explain engine, reports,
    the service layer -- works unchanged.
    """

    def __init__(self, compiled: CompiledDesign):
        self.compiled = compiled
        n = compiled.n_nets
        # Slot exists (the object core's ``net in state.events``).
        self.present = np.zeros(n, dtype=bool)
        # Event per (direction, net); masked by ``valid``.
        self.valid = np.zeros((2, n), dtype=bool)
        self.ev_tc = np.zeros((2, n), dtype=np.float64)
        self.ev_tr = np.zeros((2, n), dtype=np.float64)
        self.ev_te = np.zeros((2, n), dtype=np.float64)
        self.ev_tl = np.zeros((2, n), dtype=np.float64)
        self.processed_mask = np.zeros(n, dtype=bool)
        # Winning-arc provenance per (direction, net).
        self.win_arc = np.full((2, n), -1, dtype=np.int64)
        self.win_prov_dir = np.zeros((2, n), dtype=np.int8)
        self.win_coupled = np.zeros((2, n), dtype=bool)
        self.aprov_row = np.full((2, n), -1, dtype=np.int64)
        # Provenance entries copied from a non-columnar previous state
        # (checkpoint resume); consulted before the winner arrays.
        self.prov_overrides: dict[tuple[str, str], Provenance] = {}
        # Materialized-event memo (cleared per slot on write).
        self._ev_cache: dict[tuple[int, int], RampEvent] = {}

    # -- object API -------------------------------------------------------

    @property
    def events(self) -> _EventsView:
        return _EventsView(self)

    @property
    def processed(self) -> _ProcessedView:
        return _ProcessedView(self)

    @property
    def provenance(self) -> _ProvenanceView:
        return _ProvenanceView(self)

    @property
    def arc_prov(self) -> _ArcProvView:
        return _ArcProvView(self)

    def ensure_net(self, net_name: str) -> _SlotView:
        net = self.compiled.net_id[net_name]
        self.present[net] = True
        return _SlotView(self, net)

    def _event_at(self, d: int, net: int) -> RampEvent | None:
        if not self.valid[d, net]:
            return None
        cached = self._ev_cache.get((d, net))
        if cached is not None:
            return cached
        event = RampEvent(
            direction=DIRECTIONS[d],
            t_cross=float(self.ev_tc[d, net]),
            transition=float(self.ev_tr[d, net]),
            t_early=float(self.ev_te[d, net]),
            t_late=float(self.ev_tl[d, net]),
        )
        self._ev_cache[(d, net)] = event
        return event

    def event(self, net_name: str, direction: str) -> RampEvent | None:
        net = self.compiled.net_id.get(net_name)
        if net is None or not self.present[net]:
            return None
        return self._event_at(DIR_INDEX[direction], net)

    def quiet_time(self, net_name: str, direction: str) -> float:
        event = self.event(net_name, direction)
        if event is None:
            return float("-inf")
        return event.t_late

    def quiet_snapshot(self) -> QuietSnapshotView:
        return QuietSnapshotView(self)

    def window_snapshot(self) -> WindowSnapshotView:
        return WindowSnapshotView(self)

    # -- column writes ----------------------------------------------------

    def set_event(
        self,
        d: int,
        net: int,
        t_cross: float,
        transition: float,
        t_early: float,
        t_late: float,
    ) -> None:
        self.present[net] = True
        self.valid[d, net] = True
        self.ev_tc[d, net] = t_cross
        self.ev_tr[d, net] = transition
        self.ev_te[d, net] = t_early
        self.ev_tl[d, net] = t_late
        self._ev_cache.pop((d, net), None)

    def copy_net_from(self, prev: "ColumnTimingState | object", net: int) -> None:
        """Adopt one net's previous-pass events, provenance and ledger
        row (the Esperance / screened-refinement copy path).  ``prev``
        may be a columnar state over the same compiled design or a plain
        :class:`TimingState` (checkpoint resume)."""
        name = self.compiled.net_names[net]
        if isinstance(prev, ColumnTimingState):
            self.present[net] = True
            for d in (0, 1):
                self.valid[d, net] = prev.valid[d, net]
                self.ev_tc[d, net] = prev.ev_tc[d, net]
                self.ev_tr[d, net] = prev.ev_tr[d, net]
                self.ev_te[d, net] = prev.ev_te[d, net]
                self.ev_tl[d, net] = prev.ev_tl[d, net]
                self.win_arc[d, net] = prev.win_arc[d, net]
                self.win_prov_dir[d, net] = prev.win_prov_dir[d, net]
                self.win_coupled[d, net] = prev.win_coupled[d, net]
                self.aprov_row[d, net] = prev.aprov_row[d, net]
                self._ev_cache.pop((d, net), None)
                key = (name, DIRECTIONS[d])
                override = prev.prov_overrides.get(key)
                if override is not None:
                    self.prov_overrides[key] = override
            self.processed_mask[net] = True
            return
        # Plain TimingState: decode the dict layout into columns.
        slot = prev.events[name]
        self.present[net] = True
        for d, direction in enumerate(DIRECTIONS):
            event = slot.get(direction)
            if event is not None:
                self.set_event(
                    d, net, event.t_cross, event.transition,
                    event.t_early, event.t_late,
                )
            prov = prev.provenance.get((name, direction))
            if prov is not None:
                self.prov_overrides[(name, direction)] = prov
            row = prev.arc_prov.get((name, direction))
            if row is not None:
                self.aprov_row[d, net] = row
        self.processed_mask[net] = True
