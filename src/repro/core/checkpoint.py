"""Checkpoint/resume for the iterative analysis.

The iterative mode's unit of recoverable work is one pass: everything a
later pass consumes is the previous pass's :class:`PassResult` (events,
processed set, provenance) plus the best-so-far bound and the pass
history.  :class:`CheckpointManager` persists exactly that after every
pass, so a killed run resumed with ``--checkpoint`` continues from the
last completed pass and produces results bit-identical to an
uninterrupted run.

Bit-identity is guaranteed by serialising every float through
``float.hex()`` (lossless for all finite values and infinities) and by
the solver's determinism: later passes depend only on the restored
windows and state.  Writes are atomic (temp file + rename) and carry a
content checksum; a corrupt or mismatched checkpoint is quarantined to
``<path>.bad`` and the analysis restarts cleanly from pass 1.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from typing import Iterable

from repro.core.graph import Provenance, TimingState
from repro.core.iterative import IterationRecord
from repro.core.propagation import EndpointArrival, PassResult, Propagator
from repro.core.provenance import ProvenanceLedger
from repro.waveform.ramp import RampEvent

logger = logging.getLogger("repro.core.checkpoint")

# Format 2 added the per-arc provenance ledger (columnar payload at the
# top level) and the per-pass arc_prov row index / provenance_rows
# counts.  Format-1 files are quarantined and the run restarts -- the
# ledger cannot be reconstructed for passes that never recorded it.
CHECKPOINT_FORMAT = 2


def _hex(value: float) -> str:
    return float(value).hex()


def _unhex(raw: str) -> float:
    return float.fromhex(raw)


def _encode_event(event: RampEvent | None) -> list | None:
    if event is None:
        return None
    return [
        event.direction,
        _hex(event.t_cross),
        _hex(event.transition),
        _hex(event.t_early),
        _hex(event.t_late),
    ]


def _decode_event(raw: list | None) -> RampEvent | None:
    if raw is None:
        return None
    direction, t_cross, transition, t_early, t_late = raw
    return RampEvent(
        direction=direction,
        t_cross=_unhex(t_cross),
        transition=_unhex(transition),
        t_early=_unhex(t_early),
        t_late=_unhex(t_late),
    )


def _encode_pass(result: PassResult) -> dict:
    state = result.state
    return {
        "events": {
            net: {d: _encode_event(e) for d, e in slot.items()}
            for net, slot in state.events.items()
        },
        "processed": sorted(state.processed),
        "provenance": [
            [net, direction, p.cell, p.in_pin, p.in_net, p.in_direction,
             bool(p.coupled), _hex(p.c_active)]
            for (net, direction), p in state.provenance.items()
        ],
        "arc_prov": [
            [net, direction, row]
            for (net, direction), row in state.arc_prov.items()
        ],
        "provenance_rows": result.provenance_rows,
        "arrivals": [
            [a.endpoint, a.direction, _encode_event(a.event)]
            for a in result.arrivals
        ],
        "longest_delay": _hex(result.longest_delay),
        "critical_endpoint": result.critical_endpoint,
        "critical_direction": result.critical_direction,
        "waveform_evaluations": result.waveform_evaluations,
        "arcs_processed": result.arcs_processed,
        "coupled_arcs": result.coupled_arcs,
        "dirty_arcs": result.dirty_arcs,
        "reused_arcs": result.reused_arcs,
        "cache_evaluations": result.cache_evaluations,
        "cache_hits": result.cache_hits,
        "cache_dedup_hits": result.cache_dedup_hits,
        "cache_persisted_hits": result.cache_persisted_hits,
        "phase_seconds": {k: _hex(v) for k, v in result.phase_seconds.items()},
    }


def _decode_pass(raw: dict) -> PassResult:
    state = TimingState()
    for net, slot in raw["events"].items():
        state.events[net] = {d: _decode_event(e) for d, e in slot.items()}
    state.processed = set(raw["processed"])
    for net, direction, cell, in_pin, in_net, in_direction, coupled, c_active in raw[
        "provenance"
    ]:
        state.provenance[(net, direction)] = Provenance(
            cell=cell,
            in_pin=in_pin,
            in_net=in_net,
            in_direction=in_direction,
            coupled=bool(coupled),
            c_active=_unhex(c_active),
        )
    for net, direction, row in raw.get("arc_prov", []):
        state.arc_prov[(net, direction)] = row
    return PassResult(
        state=state,
        arrivals=[
            EndpointArrival(endpoint=e, direction=d, event=_decode_event(ev))
            for e, d, ev in raw["arrivals"]
        ],
        longest_delay=_unhex(raw["longest_delay"]),
        critical_endpoint=raw["critical_endpoint"],
        critical_direction=raw["critical_direction"],
        waveform_evaluations=raw["waveform_evaluations"],
        arcs_processed=raw["arcs_processed"],
        coupled_arcs=raw["coupled_arcs"],
        dirty_arcs=raw.get("dirty_arcs", 0),
        reused_arcs=raw.get("reused_arcs", 0),
        cache_evaluations=raw["cache_evaluations"],
        cache_hits=raw["cache_hits"],
        cache_dedup_hits=raw.get("cache_dedup_hits", 0),
        cache_persisted_hits=raw.get("cache_persisted_hits", 0),
        provenance_rows=raw.get("provenance_rows", 0),
        phase_seconds={k: _unhex(v) for k, v in raw["phase_seconds"].items()},
    )


def _encode_record(record: IterationRecord) -> dict:
    return {
        "index": record.index,
        "longest_delay": _hex(record.longest_delay),
        "waveform_evaluations": record.waveform_evaluations,
        "seconds": _hex(record.seconds),
        "recalculated_cells": record.recalculated_cells,
        "total_cells": record.total_cells,
        "cache_evaluations": record.cache_evaluations,
        "cache_hits": record.cache_hits,
        "cache_dedup_hits": record.cache_dedup_hits,
        "cache_persisted_hits": record.cache_persisted_hits,
        "dirty_arcs": record.dirty_arcs,
        "reused_arcs": record.reused_arcs,
        "provenance_rows": record.provenance_rows,
        "phase_seconds": {k: _hex(v) for k, v in record.phase_seconds.items()},
    }


def _decode_record(raw: dict) -> IterationRecord:
    return IterationRecord(
        index=raw["index"],
        longest_delay=_unhex(raw["longest_delay"]),
        waveform_evaluations=raw["waveform_evaluations"],
        seconds=_unhex(raw["seconds"]),
        recalculated_cells=raw["recalculated_cells"],
        total_cells=raw["total_cells"],
        cache_evaluations=raw["cache_evaluations"],
        cache_hits=raw["cache_hits"],
        cache_dedup_hits=raw.get("cache_dedup_hits", 0),
        cache_persisted_hits=raw.get("cache_persisted_hits", 0),
        dirty_arcs=raw.get("dirty_arcs", 0),
        reused_arcs=raw.get("reused_arcs", 0),
        provenance_rows=raw.get("provenance_rows", 0),
        phase_seconds={k: _unhex(v) for k, v in raw["phase_seconds"].items()},
    )


class CheckpointManager:
    """Persist and restore the iterative algorithm's per-pass state.

    ``fingerprint`` ties a checkpoint to an analysis configuration
    (design, config, library); a mismatch means the checkpoint describes
    a different problem and is ignored with a warning.

    ``propagator`` (optional) lets the checkpoint carry the propagator's
    per-arc provenance ledger and pass counter: the per-pass
    ``arc_prov`` row indices are only meaningful against the ledger that
    assigned them, so the two persist and restore together.
    """

    def __init__(
        self,
        path: str,
        fingerprint: str = "",
        propagator: Propagator | None = None,
    ):
        self.path = path
        self.fingerprint = fingerprint
        self.propagator = propagator

    def save(
        self,
        current: PassResult,
        best: PassResult,
        history: Iterable[IterationRecord],
        converged: bool,
    ) -> None:
        body = {
            "history": [_encode_record(r) for r in history],
            "current": _encode_pass(current),
            "best": None if best is current else _encode_pass(best),
            "converged": bool(converged),
        }
        propagator = self.propagator
        if propagator is not None and len(propagator.ledger):
            body["ledger"] = propagator.ledger.to_payload()
            body["pass_count"] = propagator._pass_count
        blob = json.dumps(body, sort_keys=True)
        payload = {
            "format": CHECKPOINT_FORMAT,
            "fingerprint": self.fingerprint,
            "checksum": hashlib.sha256(blob.encode()).hexdigest(),
            "body": body,
        }
        tmp = f"{self.path}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp, self.path)

    def load(
        self,
    ) -> tuple[PassResult, PassResult, list[IterationRecord], bool] | None:
        """Restore ``(current, best, history, converged)``.

        Returns ``None`` when there is nothing usable to resume from: no
        file, a checkpoint for a different configuration, or a corrupt
        file (which is quarantined to ``<path>.bad`` so the fresh run
        cannot trip over it again).
        """
        try:
            with open(self.path) as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            return self._quarantine("not valid JSON")
        if not isinstance(payload, dict) or payload.get("format") != CHECKPOINT_FORMAT:
            return self._quarantine("unknown format")
        if payload.get("fingerprint") != self.fingerprint:
            logger.warning(
                "checkpoint %s belongs to a different analysis configuration; "
                "starting from scratch",
                self.path,
            )
            return None
        body = payload.get("body")
        blob = json.dumps(body, sort_keys=True)
        if hashlib.sha256(blob.encode()).hexdigest() != payload.get("checksum"):
            return self._quarantine("content checksum mismatch")
        try:
            history = [_decode_record(r) for r in body["history"]]
            current = _decode_pass(body["current"])
            best = current if body["best"] is None else _decode_pass(body["best"])
            converged = bool(body["converged"])
        except (KeyError, TypeError, ValueError):
            return self._quarantine("malformed body")
        propagator = self.propagator
        if propagator is not None and "ledger" in body:
            try:
                propagator.ledger = ProvenanceLedger.from_payload(body["ledger"])
            except (KeyError, TypeError, ValueError):
                return self._quarantine("malformed provenance ledger")
            propagator._pass_count = body.get("pass_count", len(history))
        logger.info(
            "resuming from checkpoint %s: %d pass(es) completed, best bound %.6e s",
            self.path,
            len(history),
            best.longest_delay,
        )
        return current, best, history, converged

    def _quarantine(self, reason: str) -> None:
        quarantined = f"{self.path}.bad"
        try:
            os.replace(self.path, quarantined)
            where = f"quarantined to {quarantined}"
        except OSError:
            where = "could not be quarantined"
        logger.warning(
            "checkpoint %s is corrupt (%s); %s, starting from scratch",
            self.path,
            reason,
            where,
        )
        return None
