"""Analysis modes and configuration of the crosstalk-aware STA.

The five modes are exactly the rows of the paper's result tables
(Section 6):

1. **BEST_CASE** -- coupling capacitances grounded at their original
   value: coupling ignored entirely.  A comparison value only.
2. **STATIC_DOUBLED** -- grounded with doubled value: the classical
   passive approach.  Assumes permanent coupling but misses the active
   nature of the effect ("This assumption is wrong!", Section 6).
3. **WORST_CASE** -- every coupling capacitance couples according to the
   active model at all times.
4. **ONE_STEP** -- Section 5.1: couple only where the aggressor's
   opposite-direction activity window can overlap the victim's earliest
   activity; one extra best-case waveform calculation per arc; BFS stays
   linear.
5. **ITERATIVE** -- Section 5.2: one-step repeated with stored quiescent
   times until the longest-path delay stops improving.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import InputError


class AnalysisMode(Enum):
    """The paper's five coupling treatments."""

    BEST_CASE = "best_case"
    STATIC_DOUBLED = "static_doubled"
    WORST_CASE = "worst_case"
    ONE_STEP = "one_step"
    ITERATIVE = "iterative"

    @property
    def is_window_based(self) -> bool:
        """Modes that consult aggressor timing windows."""
        return self in (AnalysisMode.ONE_STEP, AnalysisMode.ITERATIVE)


class WindowCheck(Enum):
    """Aggressor-activity test of the window-based modes.

    ``QUIET``: the paper's test -- couple unless the aggressor's
    opposite-direction quiescent time precedes the victim's earliest
    activity.  ``OVERLAP``: additionally ground aggressors whose activity
    cannot *start* before the victim's worst-case completion (two-sided
    window intersection; tighter, one extra calculation per arc).
    """

    QUIET = "quiet"
    OVERLAP = "overlap"


class Engine(Enum):
    """Waveform-evaluation backend.

    ``SCALAR``: the reference implementation -- one arc at a time,
    per-time-step scalar Newton.  ``BATCH``: the vectorized engine --
    all distinct electrical situations of a topological level are
    integrated simultaneously by the batch stage solver.  Both produce
    the same delays to within the cache-quantization guard band (the
    property suite pins the agreement); ``BATCH`` is strictly a
    performance feature.
    """

    SCALAR = "scalar"
    BATCH = "batch"


class SolverTier(Enum):
    """Arc-solving policy.

    ``EXACT``: every arc is integrated by the full transistor-table
    Newton solver (the paper-faithful reference; bit-identical to the
    behaviour before the tiered pipeline existed).  ``SCREENED``: arcs
    are first answered from a per-signature screening bank -- an
    analytical macromodel calibrated from a handful of anchor solves
    plus a response surface fitted from every full solve performed --
    and only escalated to the full Newton solve when the screen cannot
    produce a bound within ``screen_tolerance``, the query falls outside
    the fitted region, or the arc sits within ``screen_slack_margin`` of
    the longest path.  Screened results are conservative (never earlier
    / faster than the exact solve), so every reported delay remains an
    upper bound.
    """

    EXACT = "exact"
    SCREENED = "screened"


class Core(Enum):
    """Propagation-core data layout.

    ``OBJECT``: the reference implementation -- per-net/per-arc Python
    objects gathered each pass.  ``COLUMNAR``: the structure-of-arrays
    core -- the design is compiled once into dense id arrays
    (:class:`repro.core.columnar.CompiledDesign`) and each pass reads
    and writes numpy columns by id.  Both cores share every decision and
    every float operation, so the exact tier is ``float.hex()``-identical
    between them in all five modes; ``COLUMNAR`` is strictly a
    performance feature.
    """

    OBJECT = "object"
    COLUMNAR = "columnar"


class ClockAggressorModel(Enum):
    """How clock-tree nets behave as aggressors.

    ``SETTLED``: the clock nets switch once at the launch edge and are
    quiet afterwards (single-edge analysis window; the return edge lies
    outside it).  ``ALWAYS``: clock nets may switch at any time --
    maximally conservative.
    """

    SETTLED = "settled"
    ALWAYS = "always"


@dataclass(frozen=True)
class StaConfig:
    """Tunable parameters of an analysis run.

    Attributes
    ----------
    mode:
        Coupling treatment (see :class:`AnalysisMode`).
    input_transition:
        Ramp time assumed at primary inputs (seconds).
    guard:
        Guard band for the window comparison ``t_a > t_bcs`` of the
        one-step algorithm, absorbing cache-quantization error on the
        conservative side.
    max_iterations:
        Pass budget of the iterative mode (including the first two).
    convergence_tolerance:
        Longest-path improvement below which iteration stops (seconds).
    esperance:
        Iterative mode only: recompute only nets on long paths
        (the Esperance speed-up of Benkoski et al. [11]).
    esperance_slack:
        Slack threshold (as a fraction of the longest-path delay) below
        which a net counts as "on a long path".
    clock_model:
        Aggressor behaviour of clock nets.
    slew_degradation_factor:
        Factor on the Elmore delay added linearly to the transition time
        at a sink (wire slew degradation; linear addition upper-bounds
        the RC-filtered sink slew, unlike the quadrature PERI form).
    window_check:
        How the one-step/iterative modes decide whether an aggressor can
        couple.  ``QUIET`` is the paper's one-sided test (aggressor quiet
        before the victim's earliest activity -> grounded).  ``OVERLAP``
        is a tighter two-sided extension: an aggressor whose activity can
        only *begin* after the victim has certainly completed is also
        grounded.  Costs one extra (all-active) waveform calculation per
        arc; still a guaranteed upper bound.
    engine:
        Waveform-evaluation backend (see :class:`Engine`).  ``BATCH``
        solves the distinct electrical situations of each topological
        level in one vectorized integration.
    workers:
        Opt-in multi-core fan-out of the batch engine: ``>= 2`` spreads
        each level's distinct solves over that many worker processes.
        ``0``/``1`` keeps everything in-process.
    arc_cache:
        Optional path of a persistent arc-cache file (JSON).  Loaded
        before the first pass when it exists and matches the design's
        process/cell-library fingerprint; rewritten after each run so
        repeated invocations skip the Newton integrations entirely.
    strict:
        Fail fast on internal faults instead of degrading gracefully: a
        failed arc solve raises instead of substituting a conservative
        bound, and a corrupt arc cache raises instead of being
        quarantined and rebuilt.
    max_degraded:
        Budget of degraded (conservatively bounded) arcs a non-strict
        run may accumulate before it is rejected; ``None`` means
        unlimited.
    checkpoint:
        Optional path of an iterative-mode checkpoint file.  State is
        persisted after every pass; when the file already holds passes
        for this exact analysis, the run resumes from them
        (bit-identical to an uninterrupted run).
    incremental:
        Delta-driven re-propagation between iterative passes: each arc's
        inputs (arrival event and decided coupling load) are
        fingerprinted with *exact* float equality, and an arc whose
        fingerprint is unchanged reuses the previous pass's waveform
        instead of re-solving.  Reuse is bit-identical by construction
        (equal inputs into a deterministic, cached calculator produce
        equal outputs), so this is purely a performance feature; disable
        to force every pass to pay full price (diagnosis, benchmarking
        baselines).
    worker_retries:
        How many times a worker chunk that died or timed out is resubmitted
        (with exponential backoff) before it is quarantined and evaluated
        in-process.
    worker_timeout:
        Per-chunk wall-clock limit in seconds for the worker pool
        (``None``: unlimited).  A chunk exceeding it counts as a worker
        failure and follows the retry/quarantine policy.
    solver_tier:
        Arc-solving policy (see :class:`SolverTier`).  ``EXACT`` keeps
        the full Newton solve on every arc; ``SCREENED`` answers arcs
        from the per-signature macromodel/response-surface bank and
        escalates to Newton only when the screen cannot meet
        ``screen_tolerance`` or the arc is slack-critical.
    screen_tolerance:
        Screened tier only: the largest acceptable error estimate
        (seconds, on the half-V_DD crossing time) of a screened bound.
        Queries whose bracket or macromodel error estimate exceeds it
        escalate to the full solve.  Per-arc inflation accumulates
        along a path, so the first-pass longest delay can exceed the
        exact delay by several multiples of this value; the slack
        refinement (see ``screen_slack_margin``) is what brings the
        reported delay back within tolerance.
    screen_slack_margin:
        Screened tier only: slack threshold, as a fraction of the
        longest-path delay, below which an arc's driver cell is forced
        to the exact tier.  The analyzer iterates this refinement until
        the near-critical cone is fully exact, so the reported critical
        path is produced by the exact solver; ``0`` disables the
        refinement.
    provenance:
        Record a per-arc provenance ledger (solver tier, escalation
        reason, reuse origin, decided coupling, pass index, signature
        token) alongside the timing results.  Annotation only: delays
        are bit-identical with the ledger on or off; disabling merely
        drops the bookkeeping (and with it ``repro explain``'s
        per-stage provenance).
    core:
        Propagation-core data layout (see :class:`Core`).  ``COLUMNAR``
        compiles the design into dense id arrays once per analyzer and
        runs each pass over numpy columns; ``OBJECT`` keeps the
        reference per-object core.  Results are bit-identical.
    clock_period:
        Optional clock period (seconds).  When set, every run
        additionally performs the backward required-time pass
        (:mod:`repro.core.slack`): endpoint setup checks, per-net and
        per-arc slack, and the ``slack`` block on the result.  ``None``
        (the default) skips constraint checking entirely -- arrival
        times are unchanged either way.
    setup_time:
        Setup requirement of flip-flop data inputs (seconds); only
        consulted when ``clock_period`` is set.
    hold_time:
        Hold requirement of flip-flop data inputs (seconds), checked by
        ``check_hold`` against a min-delay analysis.
    """

    mode: AnalysisMode = AnalysisMode.ITERATIVE
    input_transition: float = 100e-12
    guard: float = 5e-12
    max_iterations: int = 10
    convergence_tolerance: float = 1e-12
    esperance: bool = False
    esperance_slack: float = 0.15
    clock_model: ClockAggressorModel = ClockAggressorModel.SETTLED

    slew_degradation_factor: float = 2.2
    window_check: "WindowCheck" = None  # type: ignore[assignment]
    engine: Engine = Engine.SCALAR
    workers: int = 0
    arc_cache: str | None = None
    incremental: bool = True
    strict: bool = False
    max_degraded: int | None = None
    checkpoint: str | None = None
    worker_retries: int = 2
    worker_timeout: float | None = None
    solver_tier: SolverTier = SolverTier.EXACT
    screen_tolerance: float = 100e-12
    screen_slack_margin: float = 0.15
    provenance: bool = True
    core: Core = Core.COLUMNAR
    # Timing constraints.  Deliberately NOT part of the checkpoint
    # fingerprint: they only drive the backward slack pass and the
    # setup/hold verdicts, never the forward pass sequence, so a
    # checkpoint stays resumable across constraint changes.
    clock_period: float | None = None
    setup_time: float = 100e-12
    hold_time: float = 50e-12

    def __post_init__(self) -> None:
        if self.window_check is None:
            object.__setattr__(self, "window_check", WindowCheck.QUIET)
        if isinstance(self.engine, str):
            object.__setattr__(self, "engine", Engine(self.engine))
        if isinstance(self.solver_tier, str):
            object.__setattr__(self, "solver_tier", SolverTier(self.solver_tier))
        if isinstance(self.core, str):
            object.__setattr__(self, "core", Core(self.core))
        if self.screen_tolerance <= 0:
            raise InputError("screen_tolerance must be positive")
        if self.screen_slack_margin < 0:
            raise InputError("screen_slack_margin must be non-negative")
        if self.workers < 0:
            raise InputError("workers must be non-negative")
        if self.max_degraded is not None and self.max_degraded < 0:
            raise InputError("max_degraded must be non-negative")
        if self.worker_retries < 0:
            raise InputError("worker_retries must be non-negative")
        if self.clock_period is not None and self.clock_period <= 0:
            raise InputError("clock_period must be positive")
        if self.setup_time < 0:
            raise InputError("setup_time must be non-negative")
        if self.hold_time < 0:
            raise InputError("hold_time must be non-negative")

    def with_mode(self, mode: AnalysisMode) -> "StaConfig":
        from dataclasses import replace

        return replace(self, mode=mode)
