"""Critical-path explain engine.

Answers *why* a run reported its longest delay: the worst path(s) are
walked stage by stage, each stage annotated with the provenance row the
ledger recorded for its winning arc (solver tier, reuse origin,
escalation reason, decided coupling, aggressor counts, pass index,
signature token) and its coupling delta (the coupled minus quiescent
crossing time).  The per-stage **contributions telescope bit-exactly**:
summing them left to right in float arithmetic reproduces every stage's
arrival and the reported path delay *to the bit* (checked through
``float.hex`` round-trips by :func:`validate_explain`), so the
breakdown is an audit of the reported number, not an approximation of
it.

An aggregated "blame" table ranks nets by the coupling-induced delay
shift of their winning arcs -- the per-net exposure figure the ECO
repair loop consumes.
"""

from __future__ import annotations

import math
from typing import Any

from repro.circuit.netlist import Circuit
from repro.core.paths import CriticalPath, endpoint_net_name, k_worst_paths
from repro.core.propagation import PassResult
from repro.errors import EngineError, InputError

EXPLAIN_SCHEMA = "repro.explain/1"


def _exact_increment(base: float, target: float) -> float:
    """The float ``c`` with ``base + c == target`` **bitwise**.

    ``target - base`` is the natural candidate but can round such that
    ``base + c`` lands one ulp off ``target``; float addition is
    monotone in ``c``, so nudging the candidate by ulps walks ``base +
    c`` directly onto ``target``.  A couple of nudges always suffice;
    the bound is pure paranoia.
    """
    c = target - base
    for _ in range(64):
        s = base + c
        if s == target:
            return c
        c = math.nextafter(c, math.inf if s < target else -math.inf)
    raise EngineError(
        f"no float increment lands {base!r} on {target!r}"
    )  # pragma: no cover - unreachable for finite inputs


def _wire_provenance(pass_index: int) -> dict[str, Any]:
    """Synthetic provenance of the final wire-to-endpoint stage: the
    Elmore shift is closed-form arithmetic, not an arc solve."""
    return {
        "tier": "elmore",
        "origin": "wire",
        "escalation": None,
        "signature": "",
        "coupling": "none",
        "aggressors_total": 0,
        "aggressors_active": 0,
        "pass_index": pass_index,
        "coupling_delta": 0.0,
    }


def _stage_rows(
    result: Any,
    final: PassResult,
    path: CriticalPath,
    arrival: float,
) -> list[dict[str, Any]]:
    """Per-stage breakdown of one path, contributions telescoping
    bit-exactly from 0.0 to ``arrival``."""
    ledger = result.ledger
    state = final.state
    stages: list[dict[str, Any]] = []
    running = 0.0
    last_pass = 0
    for step in path.steps:
        row_id = state.arc_prov.get((step.out_net, step.out_direction))
        if ledger is not None and row_id is not None:
            prov = ledger.row(row_id)
        else:
            # Defensive: a net whose winning row predates the ledger
            # (it cannot happen in a fresh provenance-on run).
            prov = {
                "tier": "unknown",
                "origin": "unknown",
                "escalation": None,
                "signature": "",
                "coupling": "none",
                "aggressors_total": 0,
                "aggressors_active": 0,
                "pass_index": 0,
                "coupling_delta": None,
            }
        last_pass = prov["pass_index"]
        contribution = _exact_increment(running, step.event.t_cross)
        running = running + contribution
        stages.append(
            {
                "kind": "gate",
                "cell": step.cell,
                "ctype": step.ctype,
                "in_pin": step.in_pin,
                "in_net": step.in_net,
                "in_direction": step.in_direction,
                "net": step.out_net,
                "direction": step.out_direction,
                "t_cross": step.event.t_cross,
                "t_cross_hex": step.event.t_cross.hex(),
                "transition": step.event.transition,
                "coupled": step.coupled,
                "contribution": contribution,
                "contribution_hex": contribution.hex(),
                "provenance": prov,
            }
        )
    # The reported delay is the *arrival at the endpoint terminal*: the
    # last driver event shifted by the endpoint sink's Elmore wire delay
    # (plus slew degradation).  That shift is a stage too -- without it
    # the contributions cannot sum to the reported number.
    contribution = _exact_increment(running, arrival)
    stages.append(
        {
            "kind": "wire",
            "cell": "",
            "ctype": "",
            "in_pin": "",
            "in_net": path.steps[-1].out_net if path.steps else "",
            "in_direction": path.direction,
            "net": path.endpoint,
            "direction": path.direction,
            "t_cross": arrival,
            "t_cross_hex": arrival.hex(),
            "transition": 0.0,
            "coupled": False,
            "contribution": contribution,
            "contribution_hex": contribution.hex(),
            "provenance": _wire_provenance(last_pass),
        }
    )
    return stages


def _blame_table(
    circuit: Circuit, result: Any, final: PassResult, top: int
) -> list[dict[str, Any]]:
    """Nets ranked by the coupling-induced delay shift of their winning
    arcs (the larger of the two transition directions)."""
    ledger = result.ledger
    if ledger is None:
        return []
    best: dict[str, dict[str, Any]] = {}
    for (net, direction), row_id in final.state.arc_prov.items():
        row = ledger.row(row_id)
        delta = row["coupling_delta"]
        if delta is None or delta <= 0.0:
            continue
        entry = best.get(net)
        if entry is None or delta > entry["coupling_delta"]:
            best[net] = {
                "net": net,
                "direction": direction,
                "coupling_delta": delta,
                "coupling_delta_hex": delta.hex(),
                "aggressors_active": row["aggressors_active"],
                "aggressors_total": row["aggressors_total"],
                "tier": row["tier"],
                "origin": row["origin"],
                "pass_index": row["pass_index"],
            }
    ranked = sorted(
        best.values(), key=lambda e: (-e["coupling_delta"], e["net"])
    )
    return ranked[: max(top, 0)]


def explain_result(
    circuit: Circuit,
    result: Any,
    k: int = 1,
    top: int = 10,
) -> dict[str, Any]:
    """The ``repro.explain/1`` payload for a finished run.

    ``k`` worst endpoint paths are broken down (worst first -- the first
    path's delay *is* ``longest_delay``); ``top`` bounds the blame
    table.  Requires the run to have recorded the provenance ledger
    (``StaConfig.provenance``, the default).
    """
    final = result.final_pass
    if final is None:
        raise InputError("result carries no final pass to explain")
    if result.ledger is None:
        raise InputError(
            "result has no provenance ledger; re-run with provenance "
            "enabled (drop --no-provenance) to explain it"
        )
    arrivals = {(a.endpoint, a.direction): a.event.t_cross for a in final.arrivals}
    paths = []
    for path in k_worst_paths(circuit, final, k=max(k, 1)):
        if not path.steps:
            continue
        arrival = arrivals[(path.endpoint, path.direction)]
        stages = _stage_rows(result, final, path, arrival)
        paths.append(
            {
                "endpoint": path.endpoint,
                "endpoint_net": endpoint_net_name(circuit, path.endpoint),
                "direction": path.direction,
                "arrival": arrival,
                "arrival_hex": arrival.hex(),
                "arrival_ns": arrival * 1e9,
                "stages": stages,
            }
        )
    return {
        "schema": EXPLAIN_SCHEMA,
        "design": result.design_name,
        "mode": result.mode.value,
        "longest_delay": result.longest_delay,
        "longest_delay_hex": result.longest_delay.hex(),
        "longest_delay_ns": result.longest_delay_ns,
        "critical_endpoint": result.critical_endpoint,
        "critical_direction": result.critical_direction,
        "passes": result.passes,
        "provenance_rows": len(result.ledger),
        "ledger_counts": result.ledger.counts(),
        "paths": paths,
        "blame": _blame_table(circuit, result, final, top),
    }


def validate_explain(payload: dict[str, Any]) -> None:
    """Schema and bit-exactness check of an explain payload.

    Every path's stage contributions, summed left to right through
    ``float.fromhex`` round-trips, must land exactly on the path's
    ``arrival_hex``; the first (worst) path's arrival must equal
    ``longest_delay_hex``; every stage must carry a populated provenance
    record.  Raises ``ValueError`` on any violation.
    """
    if payload.get("schema") != EXPLAIN_SCHEMA:
        raise ValueError(f"not an explain payload: {payload.get('schema')!r}")
    for key in ("longest_delay_hex", "paths", "blame", "ledger_counts"):
        if key not in payload:
            raise ValueError(f"explain payload missing {key!r}")
    if not payload["paths"]:
        raise ValueError("explain payload has no paths")
    for index, path in enumerate(payload["paths"]):
        running = 0.0
        for stage in path["stages"]:
            running = running + float.fromhex(stage["contribution_hex"])
            if running != float.fromhex(stage["t_cross_hex"]):
                raise ValueError(
                    f"path {index}: contributions do not telescope onto "
                    f"stage {stage['net']!r} ({running.hex()} != "
                    f"{stage['t_cross_hex']})"
                )
            prov = stage.get("provenance")
            if not prov or not prov.get("tier") or not prov.get("origin"):
                raise ValueError(
                    f"path {index}: stage {stage['net']!r} has no "
                    "populated provenance"
                )
        if running != float.fromhex(path["arrival_hex"]):
            raise ValueError(
                f"path {index}: contributions sum to {running.hex()}, "
                f"arrival is {path['arrival_hex']}"
            )
    worst = payload["paths"][0]
    if float.fromhex(worst["arrival_hex"]) != float.fromhex(
        payload["longest_delay_hex"]
    ):
        raise ValueError(
            "worst path arrival does not equal the reported longest delay"
        )


def format_explain(payload: dict[str, Any]) -> str:
    """Human-readable rendering of an explain payload."""
    lines: list[str] = [
        f"{payload['design']} [{payload['mode']}]: longest delay "
        f"{payload['longest_delay_ns']:.3f} ns via "
        f"{payload['critical_endpoint']} ({payload['critical_direction']}), "
        f"{payload['passes']} pass(es), "
        f"{payload['provenance_rows']} provenance rows",
    ]
    for path in payload["paths"]:
        lines.append("")
        lines.append(
            f"Path to {path['endpoint']} ({path['direction']}), arrival "
            f"{path['arrival_ns'] * 1e3:.1f} ps"
        )
        lines.append(
            f"{'stage':<20} {'net':<14} {'dir':<5} {'arrive [ps]':>12} "
            f"{'incr [ps]':>10} {'tier':>10} {'origin':>12} {'coupling':>10} "
            f"{'agg':>5} {'dCoup [ps]':>11}"
        )
        lines.append("-" * 116)
        for stage in path["stages"]:
            prov = stage["provenance"]
            delta = prov.get("coupling_delta")
            label = stage["cell"] if stage["kind"] == "gate" else "(wire)"
            aggressors = (
                f"{prov['aggressors_active']}/{prov['aggressors_total']}"
                if prov["aggressors_total"]
                else "-"
            )
            delta_col = f"{delta * 1e12:>11.1f}" if delta is not None else f"{'-':>11}"
            lines.append(
                f"{label:<20} {stage['net']:<14} {stage['direction']:<5} "
                f"{stage['t_cross'] * 1e12:>12.1f} "
                f"{stage['contribution'] * 1e12:>10.1f} "
                f"{prov['tier']:>10} {prov['origin']:>12} "
                f"{prov['coupling']:>10} {aggressors:>5} {delta_col}"
            )
    if payload["blame"]:
        lines.append("")
        lines.append("Top coupling-induced delay shifts (blame):")
        lines.append(
            f"{'net':<16} {'dir':<5} {'dCoup [ps]':>11} {'aggressors':>11} "
            f"{'tier':>10} {'origin':>12}"
        )
        lines.append("-" * 72)
        for entry in payload["blame"]:
            aggressors = f"{entry['aggressors_active']}/{entry['aggressors_total']}"
            lines.append(
                f"{entry['net']:<16} {entry['direction']:<5} "
                f"{entry['coupling_delta'] * 1e12:>11.1f} {aggressors:>11} "
                f"{entry['tier']:>10} {entry['origin']:>12}"
            )
    return "\n".join(lines)
