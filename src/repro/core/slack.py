"""Graph-wide slack: the backward required-time pass.

The forward pass (paper, Sections 4-5) produces worst arrival times; a
repair loop additionally needs to know *how much room* every net and arc
has before the clock period is violated.  This module walks the levelized
timing graph in **reverse**, seeding required arrival times (RATs) at the
capture endpoints from a clock period (the exact per-endpoint formula of
:func:`repro.core.constraints.check_setup`) and relaxing them backwards
across every timing arc:

    ``req(in)  =  min over fanout arcs  of  req(out) - d(arc)``

where ``d(arc) = AT(out) - AT(in)`` is the *realized* stage delay between
the driver-output crossing times the forward pass recorded.  Per-arc
slack is ``(req(out) - d) - AT(in)``; per-net slack is ``req - AT``.
Because float subtraction is monotone and ``min`` is exact, the minimum
of a net's fanout-arc slacks equals its net slack **bitwise** (the slack
property suite pins this invariant).

Two implementations share every float operation:

* the **columnar sweep** consumes the compiled design's CSR level slabs
  (:class:`repro.core.columnar.CompiledDesign`) and the column state's
  ``ev_tc``/``valid`` arrays directly -- one vectorized gather/subtract/
  scatter-min per level, in reverse level order;
* the **object walker** iterates ``evaluation_levels`` in reverse with
  the per-net event API, serving as the reference path.

numpy float64 subtraction and minimum are IEEE-754 identical to Python
floats, and no operation here depends on evaluation order (``min`` is
exact; every candidate is an independent two-operand subtract), so the
two paths are ``float.hex()``-identical -- pinned by the slack property
suite the same way the forward cores are pinned.

:func:`slack_payload` decomposes the worst paths' slacks into per-stage
contributions that telescope bit-exactly (the ulp-walked increments of
:mod:`repro.core.explain`), and :func:`validate_slack` re-sums the hex
round-trips to audit the reported numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.circuit.netlist import Circuit, Pin
from repro.core.constraints import ConstraintReport, check_setup
from repro.core.explain import _exact_increment
from repro.core.graph import evaluation_levels
from repro.core.modes import Core
from repro.core.paths import endpoint_net_name, k_worst_paths
from repro.core.propagation import PassResult
from repro.errors import EngineError, InputError
from repro.flow.design import Design
from repro.waveform.pwl import FALLING, RISING, opposite

SLACK_SCHEMA = "repro.slack/1"

_INF = float("inf")


@dataclass
class SlackResult:
    """Outcome of one backward required-time pass.

    ``net_required``/``net_slack`` are keyed ``(net name, direction)``
    and cover every net with a finite required time; ``arc_slack`` is
    keyed by the arc's memo identity ``(cell, input pin, input
    direction)`` -- the same key the delta-driven memo and the columnar
    ``arc_key_index`` use.  All values are plain Python floats and are
    ``float.hex()``-identical across the object and columnar cores.
    """

    clock_period: float
    setup_time: float
    core: Core
    worst_slack: float
    worst_endpoint: str
    worst_direction: str
    total_negative_slack: float
    violations: int
    endpoints: ConstraintReport
    net_required: dict[tuple[str, str], float] = field(default_factory=dict)
    net_slack: dict[tuple[str, str], float] = field(default_factory=dict)
    arc_slack: dict[tuple[str, str, str], float] = field(default_factory=dict)
    runtime_seconds: float = 0.0

    @property
    def met(self) -> bool:
        return self.violations == 0

    @property
    def worst_slack_ps(self) -> float:
        return self.worst_slack * 1e12

    def slack_of(self, net: str, direction: str) -> float | None:
        return self.net_slack.get((net, direction))

    def worst_net_slack(self, net: str) -> float | None:
        """The net's slack, worst transition direction (None when the
        net carries no required time)."""
        values = [
            s
            for d in (RISING, FALLING)
            if (s := self.net_slack.get((net, d))) is not None
        ]
        return min(values) if values else None

    def summary(self) -> str:
        return self.endpoints.summary()


def _endpoint_terminal_nets(circuit: Circuit) -> dict[str, str]:
    """Endpoint terminal name -> the net it taps."""
    terminals: dict[str, str] = {}
    for endpoint in circuit.timing_endpoints():
        net = endpoint.net
        if net is None:
            continue
        name = endpoint.full_name if isinstance(endpoint, Pin) else endpoint.name
        terminals[name] = net.name
    return terminals


def _seed_required(
    design: Design,
    pass_result: PassResult,
    report: ConstraintReport,
) -> dict[tuple[str, str], float]:
    """Required times at the endpoint-driving nets.

    The endpoint RAT applies at the *terminal* (after the Elmore wire
    shift of ``_arrival_at_pin``); the net-level requirement subtracts
    the realized shift ``delta = AT(terminal) - AT(net)`` so net slack
    matches the endpoint slack up to that shift's rounding.  Endpoint
    slacks themselves come straight from ``check_setup`` and are exact.
    """
    terminals = _endpoint_terminal_nets(design.circuit)
    state = pass_result.state
    seeds: dict[tuple[str, str], float] = {}
    for entry in report.slacks:
        net_name = terminals.get(entry.endpoint)
        if net_name is None:
            continue
        event = state.event(net_name, entry.direction)
        if event is None:
            continue
        delta = entry.arrival - event.t_cross
        cand = entry.required - delta
        key = (net_name, entry.direction)
        current = seeds.get(key)
        if current is None or cand < current:
            seeds[key] = cand
    return seeds


def _object_sweep(
    design: Design,
    state: Any,
    seeds: dict[tuple[str, str], float],
) -> tuple[dict[tuple[str, str], float], dict[tuple[str, str, str], float]]:
    """Reference backward relaxation over the object graph.

    Walks ``evaluation_levels`` in reverse; works against either state
    representation through the ``event()`` API.  Every float operation
    (two-operand subtracts, exact ``min`` merges) mirrors the columnar
    sweep one for one.
    """
    req = dict(seeds)
    arc_slack: dict[tuple[str, str, str], float] = {}
    for level in reversed(evaluation_levels(design.circuit)):
        for cell in level:
            out_net = cell.output_pin.net
            if out_net is None:
                continue
            if cell.is_sequential:
                clk_net = cell.pins["CLK"].net
                if clk_net is None:
                    continue
                clk_event = state.event(clk_net.name, RISING) or state.event(
                    clk_net.name, FALLING
                )
                if clk_event is None:
                    continue
                for out_direction in (RISING, FALLING):
                    out_event = state.event(out_net.name, out_direction)
                    req_out = req.get((out_net.name, out_direction))
                    if out_event is None or req_out is None:
                        continue
                    d = out_event.t_cross - clk_event.t_cross
                    cand = req_out - d
                    arc_slack[(cell.name, "A", opposite(out_direction))] = (
                        cand - clk_event.t_cross
                    )
                    key = (clk_net.name, clk_event.direction)
                    current = req.get(key)
                    if current is None or cand < current:
                        req[key] = cand
            else:
                for pin in cell.input_pins:
                    in_net = pin.net
                    if in_net is None:
                        continue
                    for direction in (RISING, FALLING):
                        in_event = state.event(in_net.name, direction)
                        if in_event is None:
                            continue
                        out_direction = opposite(direction)
                        out_event = state.event(out_net.name, out_direction)
                        req_out = req.get((out_net.name, out_direction))
                        if out_event is None or req_out is None:
                            continue
                        d = out_event.t_cross - in_event.t_cross
                        cand = req_out - d
                        arc_slack[(cell.name, pin.name, direction)] = (
                            cand - in_event.t_cross
                        )
                        key = (in_net.name, direction)
                        current = req.get(key)
                        if current is None or cand < current:
                            req[key] = cand
    return req, arc_slack


def _columnar_sweep(
    state: Any,
    seeds: dict[tuple[str, str], float],
) -> tuple[dict[tuple[str, str], float], dict[tuple[str, str, str], float]]:
    """Vectorized backward relaxation over the compiled level slabs."""
    import numpy as np

    from repro.core.columnar import DIR_INDEX, DIRECTIONS

    compiled = state.compiled
    n = compiled.n_nets
    req = np.full((2, n), _INF, dtype=np.float64)
    for (name, direction), value in seeds.items():
        d = DIR_INDEX[direction]
        i = compiled.net_id[name]
        if value < req[d, i]:
            req[d, i] = value

    arc_col = np.full(compiled.n_arcs, np.nan, dtype=np.float64)
    at = state.ev_tc
    valid = state.valid
    in_net = compiled.arc_in_net
    in_dir = compiled.arc_in_dir
    out_net = compiled.arc_out_net
    # A gate arc's output transitions opposite to its input; flip-flop
    # arcs enumerate by output direction with arc_in_dir already set to
    # its opposite -- so one formula covers both.
    out_dir = 1 - in_dir
    is_ff = compiled.arc_is_ff
    indptr = compiled.level_indptr
    for level in range(len(compiled.levels) - 1, -1, -1):
        lo = int(indptr[level])
        hi = int(indptr[level + 1])
        if lo == hi:
            continue
        sl = slice(lo, hi)
        s_in = in_net[sl]
        s_out = out_net[sl]
        s_outd = out_dir[sl]
        safe_in = np.maximum(s_in, 0)
        # Flip-flops launch off whichever clock edge arrived (rising
        # preferred) -- mirror the forward pass's fallback, not the
        # static arc_in_dir column.
        eff_d = np.where(is_ff[sl], np.where(valid[0, safe_in], 0, 1), in_dir[sl])
        req_out = req[s_outd, s_out]
        mask = (
            (s_in >= 0)
            & valid[eff_d, safe_in]
            & valid[s_outd, s_out]
            & np.isfinite(req_out)
        )
        if not mask.any():
            continue
        idx = np.nonzero(mask)[0]
        eff_idx = eff_d[idx]
        in_idx = s_in[idx]
        a_in = at[eff_idx, in_idx]
        a_out = at[s_outd[idx], s_out[idx]]
        cand = req_out[idx] - (a_out - a_in)
        arc_col[lo + idx] = cand - a_in
        np.minimum.at(req, (eff_idx, in_idx), cand)

    net_required: dict[tuple[str, str], float] = {}
    names = compiled.net_names
    for d, i in zip(*np.nonzero(np.isfinite(req))):
        net_required[(names[i], DIRECTIONS[d])] = float(req[d, i])
    arc_slack: dict[tuple[str, str, str], float] = {}
    cells = compiled.cells
    arc_pin = compiled.arc_pin
    for a in np.nonzero(np.isfinite(arc_col))[0]:
        key = (
            cells[compiled.arc_cell[a]].name,
            arc_pin[a],
            DIRECTIONS[in_dir[a]],
        )
        arc_slack[key] = float(arc_col[a])
    return net_required, arc_slack


def compute_slack(
    design: Design,
    result: Any,
    clock_period: float,
    setup_time: float = 100e-12,
    core: Core | None = None,
) -> SlackResult:
    """Run the backward required-time pass against a finished analysis.

    ``result`` is a :class:`~repro.core.analyzer.StaResult` or a bare
    :class:`~repro.core.propagation.PassResult`.  The core defaults to
    whichever layout the forward state already uses; ``core`` forces the
    object reference walker (which reads either state through the event
    views) or the vectorized columnar sweep (which requires a columnar
    forward state).
    """
    if clock_period <= 0:
        raise InputError("clock period must be positive")
    pass_result = getattr(result, "final_pass", result)
    if pass_result is None:
        raise InputError("result carries no final pass to compute slack from")
    from repro.core.columnar import ColumnTimingState

    state = pass_result.state
    if core is None:
        core = Core.COLUMNAR if isinstance(state, ColumnTimingState) else Core.OBJECT
    if core is Core.COLUMNAR and not isinstance(state, ColumnTimingState):
        raise InputError(
            "columnar slack sweep needs a columnar forward state; "
            "re-run with core=columnar or pass core=Core.OBJECT"
        )

    t0 = time.perf_counter()
    report = check_setup(pass_result, clock_period, setup_time)
    seeds = _seed_required(design, pass_result, report)
    if core is Core.COLUMNAR:
        net_required, arc_slack = _columnar_sweep(state, seeds)
    else:
        net_required, arc_slack = _object_sweep(design, state, seeds)

    net_slack: dict[tuple[str, str], float] = {}
    for (name, direction), required in net_required.items():
        event = state.event(name, direction)
        if event is not None:
            net_slack[(name, direction)] = required - event.t_cross

    if report.slacks:
        worst = report.worst
        worst_slack = worst.slack
        worst_endpoint = worst.endpoint
        worst_direction = worst.direction
    else:
        worst_slack = _INF
        worst_endpoint = ""
        worst_direction = ""
    # Deterministic accumulation order (the arrivals list order is
    # identical across cores), so TNS is cross-core bit-identical too.
    tns = 0.0
    violations = 0
    for entry in report.slacks:
        if not entry.met:
            violations += 1
            tns = tns + entry.slack
    return SlackResult(
        clock_period=clock_period,
        setup_time=setup_time,
        core=core,
        worst_slack=worst_slack,
        worst_endpoint=worst_endpoint,
        worst_direction=worst_direction,
        total_negative_slack=tns,
        violations=violations,
        endpoints=report,
        net_required=net_required,
        net_slack=net_slack,
        arc_slack=arc_slack,
        runtime_seconds=time.perf_counter() - t0,
    )


# -- telescoping decomposition (the explain-style audit) ---------------------


def _slack_stage_rows(
    result: Any,
    final: PassResult,
    path: Any,
    slack: SlackResult,
    endpoint_slack: float,
) -> list[dict[str, Any]]:
    """Per-stage slack breakdown of one path, contributions telescoping
    bit-exactly from 0.0 onto the endpoint slack."""
    ledger = getattr(result, "ledger", None)
    state = final.state
    stages: list[dict[str, Any]] = []
    running = 0.0
    for step in path.steps:
        key = (step.out_net, step.out_direction)
        stage_slack = slack.net_slack.get(key)
        if stage_slack is None:
            # A net on a worst path always carries a required time; a
            # missing entry means the path and slack results disagree.
            raise EngineError(
                f"no slack recorded for path net {step.out_net!r} "
                f"({step.out_direction})"
            )
        arc_key = (step.cell, step.in_pin, step.in_direction)
        arc_value = slack.arc_slack.get(arc_key)
        if arc_value is None:
            # Flip-flop steps record CLK provenance but key their arc by
            # the internal launch pin.
            arc_value = slack.arc_slack.get(
                (step.cell, "A", opposite(step.out_direction))
            )
        row_id = state.arc_prov.get(key)
        prov = None
        if ledger is not None and row_id is not None:
            prov = ledger.row(row_id)
        contribution = _exact_increment(running, stage_slack)
        running = running + contribution
        stages.append(
            {
                "kind": "gate",
                "cell": step.cell,
                "net": step.out_net,
                "direction": step.out_direction,
                "arrival": step.event.t_cross,
                "arrival_hex": step.event.t_cross.hex(),
                "required": slack.net_required[key],
                "required_hex": slack.net_required[key].hex(),
                "slack": stage_slack,
                "slack_hex": stage_slack.hex(),
                "arc_slack": arc_value,
                "arc_slack_hex": arc_value.hex() if arc_value is not None else None,
                "contribution": contribution,
                "contribution_hex": contribution.hex(),
                "provenance": prov,
            }
        )
    contribution = _exact_increment(running, endpoint_slack)
    stages.append(
        {
            "kind": "endpoint",
            "cell": "",
            "net": path.endpoint,
            "direction": path.direction,
            "arrival": None,
            "arrival_hex": None,
            "required": None,
            "required_hex": None,
            "slack": endpoint_slack,
            "slack_hex": endpoint_slack.hex(),
            "arc_slack": None,
            "arc_slack_hex": None,
            "contribution": contribution,
            "contribution_hex": contribution.hex(),
            "provenance": None,
        }
    )
    return stages


def slack_payload(
    circuit: Circuit,
    result: Any,
    slack: SlackResult,
    k: int = 1,
    top: int = 10,
) -> dict[str, Any]:
    """The ``repro.slack/1`` payload: endpoint slacks plus the ``k``
    worst paths decomposed into bit-exactly telescoping stage slacks
    (``top`` bounds the failing-endpoint table)."""
    final = getattr(result, "final_pass", result)
    if final is None:
        raise InputError("result carries no final pass")
    endpoint_slacks = {
        (s.endpoint, s.direction): s for s in slack.endpoints.slacks
    }
    paths = []
    for path in k_worst_paths(circuit, final, k=max(k, 1)):
        if not path.steps:
            continue
        entry = endpoint_slacks.get((path.endpoint, path.direction))
        if entry is None:
            continue
        stages = _slack_stage_rows(result, final, path, slack, entry.slack)
        paths.append(
            {
                "endpoint": path.endpoint,
                "endpoint_net": endpoint_net_name(circuit, path.endpoint),
                "direction": path.direction,
                "arrival": entry.arrival,
                "arrival_hex": entry.arrival.hex(),
                "required": entry.required,
                "required_hex": entry.required.hex(),
                "slack": entry.slack,
                "slack_hex": entry.slack.hex(),
                "stages": stages,
            }
        )
    failing = [
        {
            "endpoint": s.endpoint,
            "direction": s.direction,
            "arrival": s.arrival,
            "required": s.required,
            "slack": s.slack,
            "slack_hex": s.slack.hex(),
        }
        for s in slack.endpoints.failing()[: max(top, 0)]
    ]
    mode = getattr(result, "mode", None)
    return {
        "schema": SLACK_SCHEMA,
        "design": getattr(result, "design_name", ""),
        "mode": mode.value if mode is not None else "",
        "core": slack.core.value,
        "clock_period": slack.clock_period,
        "setup_time": slack.setup_time,
        "worst_slack": slack.worst_slack,
        "worst_slack_hex": slack.worst_slack.hex(),
        "worst_slack_ps": slack.worst_slack_ps,
        "worst_endpoint": slack.worst_endpoint,
        "worst_direction": slack.worst_direction,
        "total_negative_slack": slack.total_negative_slack,
        "total_negative_slack_hex": slack.total_negative_slack.hex(),
        "violations": slack.violations,
        "met": slack.met,
        "endpoints": len(slack.endpoints.slacks),
        "nets_with_slack": len(slack.net_slack),
        "arcs_with_slack": len(slack.arc_slack),
        "runtime_seconds": slack.runtime_seconds,
        "failing": failing,
        "paths": paths,
    }


def validate_slack(payload: dict[str, Any]) -> None:
    """Schema and bit-exactness check of a slack payload.

    Every path's stage contributions, summed left to right through
    ``float.fromhex`` round-trips, must land exactly on each stage's
    ``slack_hex`` and finally on the path's endpoint ``slack_hex``; the
    first (worst) path's slack must equal ``worst_slack_hex``.  Raises
    ``ValueError`` on any violation.
    """
    if payload.get("schema") != SLACK_SCHEMA:
        raise ValueError(f"not a slack payload: {payload.get('schema')!r}")
    for key in ("worst_slack_hex", "paths", "failing", "violations"):
        if key not in payload:
            raise ValueError(f"slack payload missing {key!r}")
    for index, path in enumerate(payload["paths"]):
        running = 0.0
        for stage in path["stages"]:
            running = running + float.fromhex(stage["contribution_hex"])
            if running != float.fromhex(stage["slack_hex"]):
                raise ValueError(
                    f"path {index}: contributions do not telescope onto "
                    f"stage {stage['net']!r} ({running.hex()} != "
                    f"{stage['slack_hex']})"
                )
        if running != float.fromhex(path["slack_hex"]):
            raise ValueError(
                f"path {index}: contributions sum to {running.hex()}, "
                f"endpoint slack is {path['slack_hex']}"
            )
    if payload["paths"]:
        worst = payload["paths"][0]
        if float.fromhex(worst["slack_hex"]) != float.fromhex(
            payload["worst_slack_hex"]
        ):
            raise ValueError(
                "worst path slack does not equal the reported worst slack"
            )


def format_slack(payload: dict[str, Any]) -> str:
    """Human-readable rendering of a slack payload."""
    status = "MET" if payload["met"] else f"VIOLATED ({payload['violations']} endpoints)"
    lines = [
        f"{payload['design']} [{payload['mode']}]: clock "
        f"{payload['clock_period'] * 1e9:.3f} ns, setup "
        f"{payload['setup_time'] * 1e12:.0f} ps: {status}",
        f"worst slack {payload['worst_slack_ps']:+.1f} ps at "
        f"{payload['worst_endpoint']} ({payload['worst_direction']}), "
        f"TNS {payload['total_negative_slack'] * 1e12:.1f} ps over "
        f"{payload['violations']} failing endpoint(s)",
    ]
    if payload["failing"]:
        lines.append("")
        lines.append(
            f"{'endpoint':<22} {'dir':<5} {'arrive [ps]':>12} "
            f"{'required [ps]':>14} {'slack [ps]':>11}"
        )
        lines.append("-" * 68)
        for entry in payload["failing"]:
            lines.append(
                f"{entry['endpoint']:<22} {entry['direction']:<5} "
                f"{entry['arrival'] * 1e12:>12.1f} "
                f"{entry['required'] * 1e12:>14.1f} "
                f"{entry['slack'] * 1e12:>11.1f}"
            )
    for path in payload["paths"]:
        lines.append("")
        lines.append(
            f"Worst path to {path['endpoint']} ({path['direction']}): "
            f"slack {path['slack'] * 1e12:+.1f} ps"
        )
        lines.append(
            f"{'stage':<20} {'net':<14} {'dir':<5} {'arrive [ps]':>12} "
            f"{'required [ps]':>14} {'slack [ps]':>11}"
        )
        lines.append("-" * 82)
        for stage in path["stages"]:
            label = stage["cell"] if stage["kind"] == "gate" else "(endpoint)"
            arrive = (
                f"{stage['arrival'] * 1e12:>12.1f}"
                if stage["arrival"] is not None
                else f"{'-':>12}"
            )
            required = (
                f"{stage['required'] * 1e12:>14.1f}"
                if stage["required"] is not None
                else f"{'-':>14}"
            )
            lines.append(
                f"{label:<20} {stage['net']:<14} {stage['direction']:<5} "
                f"{arrive} {required} {stage['slack'] * 1e12:>11.1f}"
            )
    return "\n".join(lines)
