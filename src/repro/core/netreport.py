"""Crosstalk-critical net ranking.

After an analysis run, designers want to know *which wires* are worth
shielding or re-routing.  This module ranks victim nets by their modelled
crosstalk exposure: coupling capacitance, number of live aggressors (those
whose windows overlapped), and timing criticality (slack against the
longest path).  This mirrors the "net sorting" use-case of the
crosstalk-analysis literature contemporaneous with the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.propagation import PassResult
from repro.flow.design import Design
from repro.waveform.pwl import FALLING, RISING

if TYPE_CHECKING:
    from repro.core.slack import SlackResult


@dataclass(frozen=True)
class NetExposure:
    """Crosstalk exposure summary of one net."""

    net: str
    coupling_cap: float
    aggressor_count: int
    worst_arrival: float
    slack: float
    coupled: bool
    divider_fraction: float

    @property
    def score(self) -> float:
        """Ranking score: coupling fraction weighted by criticality.

        ``divider_fraction`` is the worst-case voltage-divider ratio
        ``C_c / C_total`` (proportional to the glitch amplitude); nets
        with little slack get the full weight, nets with ample slack decay.
        """
        if self.slack <= 0:
            weight = 1.0
        else:
            weight = max(0.0, 1.0 - self.slack / max(self.worst_arrival, 1e-15))
        return self.divider_fraction * (0.25 + 0.75 * weight)


def rank_crosstalk_nets(
    design: Design,
    pass_result: PassResult,
    top: int | None = 20,
    slack: "SlackResult | None" = None,
) -> list[NetExposure]:
    """Rank nets by crosstalk exposure after an analysis pass.

    Without ``slack``, timing criticality is approximated as distance to
    the longest-path horizon (every net treated as if it fed the worst
    endpoint).  With a backward-pass :class:`~repro.core.slack.SlackResult`
    the *true* required-time slack of each net is used instead -- nets
    with genuinely negative slack rank with full weight even when they
    sit far from the single worst path.
    """
    horizon = pass_result.longest_delay
    exposures: list[NetExposure] = []
    for net_name, load in design.loads.items():
        if not load.couplings:
            continue
        arrivals = []
        coupled = False
        for direction in (RISING, FALLING):
            event = pass_result.state.event(net_name, direction)
            if event is not None:
                arrivals.append(event.t_cross)
            provenance = pass_result.state.provenance.get((net_name, direction))
            if provenance is not None and provenance.coupled:
                coupled = True
        if not arrivals:
            continue
        worst = max(arrivals)
        net_slack = horizon - worst
        if slack is not None:
            true_slack = slack.worst_net_slack(net_name)
            if true_slack is not None:
                net_slack = true_slack
        c_total = load.c_fixed + load.c_coupling_total
        exposures.append(
            NetExposure(
                net=net_name,
                coupling_cap=load.c_coupling_total,
                aggressor_count=len(load.couplings),
                worst_arrival=worst,
                slack=net_slack,
                coupled=coupled,
                divider_fraction=load.c_coupling_total / max(c_total, 1e-21),
            )
        )
    exposures.sort(key=lambda e: e.score, reverse=True)
    if top is not None:
        exposures = exposures[:top]
    return exposures


NET_REPORT_SCHEMA = "repro.netreport/1"

# Per-net required keys of the machine-readable report (and their types);
# shared by ``validate_net_report`` below, the CLI's ``--net-report`` and
# the service's ``query_net`` so every consumer sees one payload shape.
_NET_FIELDS = {
    "net": str,
    "coupling_cap": float,
    "aggressor_count": int,
    "worst_arrival": float,
    "slack": float,
    "coupled": bool,
    "divider_fraction": float,
    "score": float,
}


def exposure_to_dict(exposure: NetExposure) -> dict:
    """One ranking entry as a JSON-safe dictionary (times in seconds)."""
    return {
        "net": exposure.net,
        "coupling_cap": exposure.coupling_cap,
        "aggressor_count": exposure.aggressor_count,
        "worst_arrival": exposure.worst_arrival,
        "slack": exposure.slack,
        "coupled": exposure.coupled,
        "divider_fraction": exposure.divider_fraction,
        "score": exposure.score,
    }


def net_report_payload(
    design: Design,
    pass_result: PassResult,
    top: int | None = 20,
    exposures: list[NetExposure] | None = None,
    slack: "SlackResult | None" = None,
) -> dict:
    """The crosstalk ranking as a schema-tagged JSON payload.

    This is the machine-readable sibling of :func:`format_net_report`:
    the CLI writes it behind ``--net-report`` and the timing-query
    service returns the same entries from ``query_net``, so CI and
    service clients consume one format.
    """
    if exposures is None:
        exposures = rank_crosstalk_nets(design, pass_result, top=top, slack=slack)
    return {
        "schema": NET_REPORT_SCHEMA,
        "design": design.name,
        "longest_delay": pass_result.longest_delay,
        "slack_basis": "required" if slack is not None else "horizon",
        "nets": [exposure_to_dict(e) for e in exposures],
    }


def validate_net_report(payload: dict) -> list[str]:
    """Structural checks on a ``--net-report`` payload; returns error
    strings (empty = valid)."""
    errors: list[str] = []
    if not isinstance(payload, dict):
        return ["net report: not an object"]
    if payload.get("schema") != NET_REPORT_SCHEMA:
        errors.append(
            f"net report: schema {payload.get('schema')!r} != {NET_REPORT_SCHEMA!r}"
        )
    if not isinstance(payload.get("design"), str):
        errors.append("net report: missing design")
    if not isinstance(payload.get("longest_delay"), float):
        errors.append("net report: missing longest_delay")
    nets = payload.get("nets")
    if not isinstance(nets, list):
        return errors + ["net report: nets is not a list"]
    for i, entry in enumerate(nets):
        if not isinstance(entry, dict):
            errors.append(f"nets[{i}]: not an object")
            continue
        for field_name, field_type in _NET_FIELDS.items():
            value = entry.get(field_name)
            if field_type is float and isinstance(value, int):
                value = float(value)
            if not isinstance(value, field_type) or (
                field_type is int and isinstance(value, bool)
            ):
                errors.append(f"nets[{i}].{field_name}: expected {field_type.__name__}")
    return errors


def format_net_report(exposures: list[NetExposure]) -> str:
    """Render the ranking as a text table."""
    lines = [
        f"{'net':<24} {'C_c [fF]':>9} {'aggr':>5} {'Cc/Ctot':>8} "
        f"{'arrival [ps]':>13} {'slack [ps]':>11} {'coupled':>8}",
        "-" * 84,
    ]
    for e in exposures:
        lines.append(
            f"{e.net:<24} {e.coupling_cap*1e15:>9.2f} {e.aggressor_count:>5d} "
            f"{e.divider_fraction:>8.2f} {e.worst_arrival*1e12:>13.1f} "
            f"{e.slack*1e12:>11.1f} {'yes' if e.coupled else 'no':>8}"
        )
    return "\n".join(lines)
