"""Crosstalk-critical net ranking.

After an analysis run, designers want to know *which wires* are worth
shielding or re-routing.  This module ranks victim nets by their modelled
crosstalk exposure: coupling capacitance, number of live aggressors (those
whose windows overlapped), and timing criticality (slack against the
longest path).  This mirrors the "net sorting" use-case of the
crosstalk-analysis literature contemporaneous with the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.propagation import PassResult
from repro.flow.design import Design
from repro.waveform.pwl import FALLING, RISING


@dataclass(frozen=True)
class NetExposure:
    """Crosstalk exposure summary of one net."""

    net: str
    coupling_cap: float
    aggressor_count: int
    worst_arrival: float
    slack: float
    coupled: bool
    divider_fraction: float

    @property
    def score(self) -> float:
        """Ranking score: coupling fraction weighted by criticality.

        ``divider_fraction`` is the worst-case voltage-divider ratio
        ``C_c / C_total`` (proportional to the glitch amplitude); nets
        with little slack get the full weight, nets with ample slack decay.
        """
        if self.slack <= 0:
            weight = 1.0
        else:
            weight = max(0.0, 1.0 - self.slack / max(self.worst_arrival, 1e-15))
        return self.divider_fraction * (0.25 + 0.75 * weight)


def rank_crosstalk_nets(
    design: Design,
    pass_result: PassResult,
    top: int | None = 20,
) -> list[NetExposure]:
    """Rank nets by crosstalk exposure after an analysis pass."""
    horizon = pass_result.longest_delay
    exposures: list[NetExposure] = []
    for net_name, load in design.loads.items():
        if not load.couplings:
            continue
        arrivals = []
        coupled = False
        for direction in (RISING, FALLING):
            event = pass_result.state.event(net_name, direction)
            if event is not None:
                arrivals.append(event.t_cross)
            provenance = pass_result.state.provenance.get((net_name, direction))
            if provenance is not None and provenance.coupled:
                coupled = True
        if not arrivals:
            continue
        worst = max(arrivals)
        c_total = load.c_fixed + load.c_coupling_total
        exposures.append(
            NetExposure(
                net=net_name,
                coupling_cap=load.c_coupling_total,
                aggressor_count=len(load.couplings),
                worst_arrival=worst,
                slack=horizon - worst,
                coupled=coupled,
                divider_fraction=load.c_coupling_total / max(c_total, 1e-21),
            )
        )
    exposures.sort(key=lambda e: e.score, reverse=True)
    if top is not None:
        exposures = exposures[:top]
    return exposures


def format_net_report(exposures: list[NetExposure]) -> str:
    """Render the ranking as a text table."""
    lines = [
        f"{'net':<24} {'C_c [fF]':>9} {'aggr':>5} {'Cc/Ctot':>8} "
        f"{'arrival [ps]':>13} {'slack [ps]':>11} {'coupled':>8}",
        "-" * 84,
    ]
    for e in exposures:
        lines.append(
            f"{e.net:<24} {e.coupling_cap*1e15:>9.2f} {e.aggressor_count:>5d} "
            f"{e.divider_fraction:>8.2f} {e.worst_arrival*1e12:>13.1f} "
            f"{e.slack*1e12:>11.1f} {'yes' if e.coupled else 'no':>8}"
        )
    return "\n".join(lines)
