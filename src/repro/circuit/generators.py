"""Synthetic sequential benchmark circuits.

The paper's evaluation uses routed ISCAS89 netlists (s35932, s38417,
s38584).  The original netlists are not redistributable here, so this module
generates *deterministic synthetic equivalents*: levelized random logic
between flip-flop boundaries with ISCAS89-like gate mix, fanin/fanout
statistics and logic depth, plus the clock buffer tree the paper adds.
The crosstalk-STA algorithms only consume netlist topology and extracted
parasitics, so any synchronous circuit of comparable size and shape
exercises the identical code paths (see DESIGN.md, substitution table).

Generation goes through a :class:`~repro.circuit.bench.BenchNetlist` so the
result also exercises the ``.bench`` technology-mapping flow used for real
ISCAS89 files.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.circuit.bench import BenchGate, BenchNetlist, map_to_circuit
from repro.circuit.library import Library
from repro.circuit.netlist import Circuit, NetlistError
from repro.errors import InputError


@dataclass(frozen=True)
class GeneratorSpec:
    """Parameters of a synthetic circuit.

    ``n_gates`` counts pre-mapping logic gates (NOT/NAND/NOR); the mapped
    cell count matches it closely because these gates map one-to-one.
    ``depth`` is the target combinational depth in gate levels.
    ``gate_mix`` gives relative weights of the generated gate types.
    ``fanout_cap`` bounds how many sinks one signal may feed.
    """

    name: str
    seed: int
    n_inputs: int
    n_outputs: int
    n_ff: int
    n_gates: int
    depth: int
    fanout_cap: int = 12
    locality: float = 0.45
    cluster_size: int = 120
    cluster_locality: float = 0.88
    gate_mix: dict = field(
        default_factory=lambda: {
            "NOT": 0.18,
            "NAND2": 0.30,
            "NAND3": 0.09,
            "NAND4": 0.04,
            "NOR2": 0.26,
            "NOR3": 0.09,
            "NOR4": 0.04,
        }
    )

    def scaled(self, scale: float) -> "GeneratorSpec":
        """Shrink (or grow) the circuit, keeping depth and shape."""
        if scale <= 0:
            raise InputError("scale must be positive")

        def sz(n: int, minimum: int = 1) -> int:
            return max(minimum, round(n * scale))

        return GeneratorSpec(
            name=self.name,
            seed=self.seed,
            n_inputs=sz(self.n_inputs, 2),
            n_outputs=sz(self.n_outputs, 2),
            n_ff=sz(self.n_ff, 4),
            n_gates=sz(self.n_gates, 16),
            depth=self.depth,
            fanout_cap=self.fanout_cap,
            locality=self.locality,
            cluster_size=self.cluster_size,
            cluster_locality=self.cluster_locality,
            gate_mix=dict(self.gate_mix),
        )


_GATE_FANIN = {
    "NOT": 1,
    "NAND2": 2,
    "NAND3": 3,
    "NAND4": 4,
    "NOR2": 2,
    "NOR3": 3,
    "NOR4": 4,
}


def generate_bench(spec: GeneratorSpec) -> BenchNetlist:
    """Generate the logical netlist for a spec (deterministic per seed).

    Gates are organised into *clusters* (Rent's-rule-style locality): each
    gate draws most of its inputs from its own cluster and only
    occasionally from a random other cluster.  Real netlists have this
    structure, and without it placement cannot achieve realistic
    wirelength or coupling statistics.
    """
    rng = random.Random(spec.seed)
    netlist = BenchNetlist(name=spec.name)

    pi_signals = [f"PI{i}" for i in range(spec.n_inputs)]
    ff_signals = [f"FFQ{i}" for i in range(spec.n_ff)]
    netlist.inputs.extend(pi_signals)

    n_clusters = max(1, round(spec.n_gates / spec.cluster_size))
    sources = pi_signals + ff_signals
    # Contiguous slices of the sources seed the clusters.
    cluster_of_src = {
        sig: (i * n_clusters) // len(sources) for i, sig in enumerate(sources)
    }

    # level -> cluster -> signals produced there (level 0 = sources).
    def empty_level() -> list[list[str]]:
        return [[] for _ in range(n_clusters)]

    level_signals: list[list[list[str]]] = [empty_level()]
    for sig in sources:
        level_signals[0][cluster_of_src[sig]].append(sig)
    budget: dict[str, int] = {s: spec.fanout_cap for s in sources}

    gate_types = list(spec.gate_mix)
    gate_weights = [spec.gate_mix[t] for t in gate_types]
    depth = max(2, spec.depth)
    per_level = _spread(spec.n_gates, depth, rng)

    def pick_inputs(level: int, fanin: int, cluster: int) -> list[str]:
        """Choose ``fanin`` distinct driver signals from earlier levels:
        biased toward the previous level (deep paths) and toward the own
        cluster (locality)."""
        chosen: list[str] = []
        guard = 0
        while len(chosen) < fanin:
            guard += 1
            if guard > 300:
                pool = [
                    s
                    for lvl in level_signals[:level]
                    for cl in lvl
                    for s in cl
                    if s not in chosen
                ]
                chosen.append(rng.choice(pool))
                continue
            src_level = level - 1
            while src_level > 0 and rng.random() > spec.locality:
                src_level -= 1
            if rng.random() < spec.cluster_locality:
                src_cluster = cluster
            else:
                # Cross-cluster references prefer *nearby* clusters
                # (geometric falloff): real netlists obey Rent's rule and
                # mostly talk to their neighbourhood, which is what lets a
                # placer keep wirelength bounded.
                hop = 1 + int(rng.expovariate(0.9))
                if rng.random() < 0.5:
                    hop = -hop
                src_cluster = max(0, min(n_clusters - 1, cluster + hop))
            pool = level_signals[src_level][src_cluster]
            if not pool:
                continue
            sig = pool[rng.randrange(len(pool))]
            if sig in chosen or budget.get(sig, 0) <= 0:
                continue
            chosen.append(sig)
            budget[sig] -= 1
        return chosen

    gate_id = 0

    def emit_gate(level: int, cluster: int, produced: list[list[str]]) -> None:
        nonlocal gate_id
        choice = rng.choices(gate_types, weights=gate_weights, k=1)[0]
        fanin = _GATE_FANIN[choice]
        gtype = choice.rstrip("0123456789")  # "NAND2" -> "NAND"
        ins = pick_inputs(level, fanin, cluster)
        sig = f"N{gate_id}"
        gate_id += 1
        netlist.gates[sig] = BenchGate(sig, gtype, ins)
        produced[cluster].append(sig)
        budget[sig] = spec.fanout_cap

    for level in range(1, depth + 1):
        produced = empty_level()
        count = per_level[level - 1]
        for k in range(count):
            emit_gate(level, k % n_clusters, produced)
        if not any(produced):
            emit_gate(level, rng.randrange(n_clusters), produced)
        level_signals.append(produced)

    # Endpoints: flip-flop D inputs and primary outputs sample the deepest
    # levels so the longest paths terminate at capture points.  Flip-flops
    # stay cluster-local most of the time.
    def cluster_pool(cluster: int, lo_level: int) -> list[str]:
        return [s for lvl in level_signals[lo_level:] for s in lvl[cluster]]

    all_pool = [s for lvl in level_signals[1:] for cl in lvl for s in cl]
    deep_pool = [s for lvl in level_signals[max(1, depth - 3) :] for cl in lvl for s in cl]
    for i, ff_sig in enumerate(ff_signals):
        cluster = cluster_of_src[ff_sig]
        if rng.random() < spec.cluster_locality:
            pool = cluster_pool(cluster, max(1, depth - 3)) or cluster_pool(cluster, 1)
        else:
            pool = []
        if not pool:
            pool = deep_pool if rng.random() < 0.7 else all_pool
        netlist.gates[ff_sig] = BenchGate(ff_sig, "DFF", [rng.choice(pool)])

    chosen_outputs: set[str] = set()
    for _ in range(spec.n_outputs):
        pool = deep_pool if rng.random() < 0.5 else all_pool
        candidates = [s for s in pool if s not in chosen_outputs]
        if not candidates:
            candidates = [s for s in all_pool if s not in chosen_outputs]
            if not candidates:
                break
        src = rng.choice(candidates)
        chosen_outputs.add(src)
        netlist.outputs.append(src)

    return netlist


def _spread(total: int, bins: int, rng: random.Random) -> list[int]:
    """Distribute ``total`` items over ``bins`` with mild randomness and a
    front-loaded profile (early levels are wider in real netlists)."""
    weights = [1.0 + 0.5 * (bins - i) / bins + 0.2 * rng.random() for i in range(bins)]
    norm = sum(weights)
    counts = [int(total * w / norm) for w in weights]
    # Distribute the rounding remainder.
    short = total - sum(counts)
    for i in range(short):
        counts[i % bins] += 1
    return counts


def generate_circuit(spec: GeneratorSpec, library: Library | None = None) -> Circuit:
    """Generate, map and clock-buffer a synthetic circuit."""
    netlist = generate_bench(spec)
    circuit = map_to_circuit(netlist, library)
    add_clock_tree(circuit)
    return circuit


def add_clock_tree(circuit: Circuit, max_fanout: int = 12) -> int:
    """Insert a buffer tree between the clock root and the flip-flops.

    The paper's setup adds "a clock buffer tree"; its nets matter here
    because they are coupling aggressors like any other wire.  Buffers are
    built from inverter pairs so the clock polarity is preserved.  Returns
    the number of cells added.
    """
    clock_net = circuit.clock_net
    if clock_net is None:
        return 0
    ff_clk_pins = [
        cell.pins["CLK"]
        for cell in circuit.flip_flops()
        if cell.pins["CLK"].net is clock_net
    ]
    if len(ff_clk_pins) <= max_fanout:
        return 0

    # Detach the flip-flop clock pins from the root net.
    clock_net.sinks = [s for s in clock_net.sinks if s not in set(ff_clk_pins)]

    added = 0
    uid = [0]

    def buffer_group(sinks: list) -> "object":
        """Create one inverter-pair buffer driving ``sinks``; returns the
        buffer's input pin (to be attached one level up)."""
        nonlocal added
        uid[0] += 1
        mid = circuit.net(f"clktree_m{uid[0]}")
        out = circuit.net(f"clktree_o{uid[0]}")
        out.is_clock = True
        mid.is_clock = True
        inv1 = circuit.add_cell(
            "INV_X4", f"clkbuf_a{uid[0]}", {"A": f"clktree_i{uid[0]}", "Y": mid.name}
        )
        circuit.add_cell("INV_X4", f"clkbuf_b{uid[0]}", {"A": mid.name, "Y": out.name})
        added += 2
        circuit.net(f"clktree_i{uid[0]}").is_clock = True
        for sink in sinks:
            old = sink.net
            if old is not None:
                old.sinks = [s for s in old.sinks if s is not sink]
            out.sinks.append(sink)
            sink.net = out
        return inv1.pins["A"]

    level_pins = ff_clk_pins
    while len(level_pins) > max_fanout:
        next_pins = []
        for start in range(0, len(level_pins), max_fanout):
            group = level_pins[start : start + max_fanout]
            next_pins.append(buffer_group(group))
        level_pins = next_pins
    for pin in level_pins:
        if pin.net is clock_net:
            continue
        # Root-level buffer inputs attach to the clock root net.  A buffer
        # input pin created by buffer_group is already connected to its
        # private clktree_i net; move it onto the clock root.
        old = pin.net
        if old is not None:
            old.sinks = [s for s in old.sinks if s is not pin]
        clock_net.sinks.append(pin)
        pin.net = clock_net
    _prune_dangling_nets(circuit)
    return added


def _prune_dangling_nets(circuit: Circuit) -> None:
    """Drop nets that ended up with no driver and no sinks (bookkeeping
    leftovers from clock-tree rewiring)."""
    dead = [
        name
        for name, net in circuit.nets.items()
        if net.driver is None and not net.sinks
    ]
    for name in dead:
        del circuit.nets[name]


# -- named paper-equivalent circuits ----------------------------------------

# Parameters approximate the ISCAS89 circuits' published shape: flip-flop
# count, logic depth and I/O count; gate counts are tuned so the *mapped*
# cell count (including the clock tree) lands near the paper's numbers
# (17900 / 23922 / 20812 cells).

S35932_SPEC = GeneratorSpec(
    name="s35932_like",
    seed=359320,
    n_inputs=35,
    n_outputs=320,
    n_ff=1728,
    n_gates=15500,
    depth=12,
)

S38417_SPEC = GeneratorSpec(
    name="s38417_like",
    seed=384170,
    n_inputs=28,
    n_outputs=106,
    n_ff=1636,
    n_gates=21800,
    depth=33,
)

S38584_SPEC = GeneratorSpec(
    name="s38584_like",
    seed=385840,
    n_inputs=38,
    n_outputs=304,
    n_ff=1426,
    n_gates=18900,
    depth=24,
)


def s35932_like(scale: float = 1.0, library: Library | None = None) -> Circuit:
    """Synthetic stand-in for s35932 (paper Table 1; 17900 cells at full scale)."""
    return generate_circuit(S35932_SPEC.scaled(scale), library)


def s38417_like(scale: float = 1.0, library: Library | None = None) -> Circuit:
    """Synthetic stand-in for s38417 (paper Table 2; 23922 cells at full scale)."""
    return generate_circuit(S38417_SPEC.scaled(scale), library)


def s38584_like(scale: float = 1.0, library: Library | None = None) -> Circuit:
    """Synthetic stand-in for s38584 (paper Table 3; 20812 cells at full scale)."""
    return generate_circuit(S38584_SPEC.scaled(scale), library)
