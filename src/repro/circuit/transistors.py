"""Transistor-level topologies of the library cells.

Each static CMOS cell is described by a pull-up and a pull-down
switch network over its input pins.  The networks serve two consumers:

* the **stage solver** collapses them onto single equivalent devices for a
  given switching input (series/parallel width reduction), and
* the **validation simulator** expands them into individual MOSFETs with
  explicit internal nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.devices.mosfet import (
    Mosfet,
    MosfetParams,
    parallel_equivalent_width,
    series_equivalent_width,
)
from repro.devices.params import ProcessParams, SizingRules, default_process, default_sizing


@dataclass(frozen=True)
class Dev:
    """A single transistor gated by input pin ``pin``.

    ``width_scale`` multiplies the base width chosen by the sizing rules
    (used to widen series stacks).
    """

    pin: str
    width_scale: float = 1.0


@dataclass(frozen=True)
class Series:
    """Devices in series (a stack)."""

    children: tuple["Network", ...]


@dataclass(frozen=True)
class Parallel:
    """Devices in parallel."""

    children: tuple["Network", ...]


Network = Union[Dev, Series, Parallel]


def series(*children: Network) -> Series:
    return Series(tuple(children))


def parallel(*children: Network) -> Parallel:
    return Parallel(tuple(children))


def network_pins(net: Network) -> list[str]:
    """All input pins appearing in the network, in first-appearance order."""
    pins: list[str] = []

    def walk(node: Network) -> None:
        if isinstance(node, Dev):
            if node.pin not in pins:
                pins.append(node.pin)
        else:
            for child in node.children:
                walk(child)

    walk(net)
    return pins


def count_devices(net: Network) -> int:
    """Number of transistors in the network."""
    if isinstance(net, Dev):
        return 1
    return sum(count_devices(child) for child in net.children)


def stack_depth(net: Network) -> int:
    """Longest series chain through the network."""
    if isinstance(net, Dev):
        return 1
    if isinstance(net, Series):
        return sum(stack_depth(child) for child in net.children)
    return max(stack_depth(child) for child in net.children)


def pin_gate_width(net: Network, pin: str, base_width: float) -> float:
    """Total gate width connected to ``pin`` (for input capacitance)."""
    if isinstance(net, Dev):
        return base_width * net.width_scale if net.pin == pin else 0.0
    return sum(pin_gate_width(child, pin, base_width) for child in net.children)


def collapse_width(
    net: Network,
    switching_pin: str,
    base_width: float,
) -> float | None:
    """Equivalent single-device width for a transition on ``switching_pin``.

    The worst case for delay is the *weakest* conducting configuration of
    the network that still switches: every device not gated by the
    switching pin is assumed fully on when it lies in series with the
    switching device (it must conduct for the output to move) and fully
    off when it lies in parallel (no help from other branches).  Under
    that assumption:

    * series composition -> reciprocal width sum over all children,
    * parallel composition -> only the child containing the switching pin
      conducts.

    Returns ``None`` if the network does not depend on the pin.
    """
    if isinstance(net, Dev):
        if net.pin == switching_pin:
            return base_width * net.width_scale
        return None
    if isinstance(net, Series):
        widths: list[float] = []
        found = False
        for child in net.children:
            w = collapse_width(child, switching_pin, base_width)
            if w is None:
                # Child is a static on-device in the conducting path: its
                # own worst-case (weakest) width is its full series
                # resistance with all internal branches on.
                widths.append(_on_width(child, base_width))
            else:
                widths.append(w)
                found = True
        if not found:
            return None
        return series_equivalent_width(widths)
    # Parallel: only the branch with the switching input conducts.
    best: float | None = None
    for child in net.children:
        w = collapse_width(child, switching_pin, base_width)
        if w is not None and (best is None or w < best):
            # Worst case: the weakest conducting branch.
            best = w
    return best


def _on_width(net: Network, base_width: float) -> float:
    """Width of the network with every device on (for static series
    elements in a conducting path)."""
    if isinstance(net, Dev):
        return base_width * net.width_scale
    if isinstance(net, Series):
        return series_equivalent_width([_on_width(c, base_width) for c in net.children])
    return parallel_equivalent_width([_on_width(c, base_width) for c in net.children])


@dataclass(frozen=True)
class FlatDevice:
    """A MOSFET with explicit terminals, produced by network expansion."""

    gate_pin: str
    drain: str
    source: str
    polarity: int
    width: float


def expand_network(
    net: Network,
    polarity: int,
    base_width: float,
    top: str,
    bottom: str,
    prefix: str,
) -> list[FlatDevice]:
    """Flatten a network into individual transistors.

    ``top``/``bottom`` are the node names the network connects (e.g. the
    cell output and the rail).  Internal series nodes get generated names
    ``{prefix}.n{i}``.
    """
    devices: list[FlatDevice] = []
    counter = [0]

    def fresh_node() -> str:
        counter[0] += 1
        return f"{prefix}.n{counter[0]}"

    def walk(node: Network, a: str, b: str) -> None:
        if isinstance(node, Dev):
            devices.append(
                FlatDevice(
                    gate_pin=node.pin,
                    drain=a,
                    source=b,
                    polarity=polarity,
                    width=base_width * node.width_scale,
                )
            )
            return
        if isinstance(node, Series):
            nodes = [a] + [fresh_node() for _ in node.children[:-1]] + [b]
            for child, (na, nb) in zip(node.children, zip(nodes, nodes[1:])):
                walk(child, na, nb)
            return
        for child in node.children:
            walk(child, a, b)

    walk(net, top, bottom)
    return devices


@dataclass(frozen=True)
class CellTopology:
    """Pull-up / pull-down networks plus base widths of one cell type."""

    pull_up: Network
    pull_down: Network
    wp_base: float
    wn_base: float

    def input_cap(self, pin: str, process: ProcessParams) -> float:
        """Gate capacitance presented by ``pin``."""
        width = pin_gate_width(self.pull_up, pin, self.wp_base) + pin_gate_width(
            self.pull_down, pin, self.wn_base
        )
        return process.gate_cap(width)

    def output_parasitic_cap(self, process: ProcessParams) -> float:
        """Junction capacitance charged during an output transition.

        Counts the full network width (internal stack nodes included) --
        an upper bound on the charge the simulator's distributed junction
        capacitances actually move, keeping the timing model conservative
        with respect to the validation simulation.
        """
        width = _network_width(self.pull_up, self.wp_base) + _network_width(
            self.pull_down, self.wn_base
        )
        return process.c_junction * width

    def transistor_count(self) -> int:
        return count_devices(self.pull_up) + count_devices(self.pull_down)

    def equivalent_stage(
        self,
        switching_pin: str,
        process: ProcessParams | None = None,
    ) -> tuple[Mosfet | None, Mosfet | None]:
        """Collapse to (pull-up device, pull-down device) for a transition
        on ``switching_pin``; either may be ``None`` if that network does
        not depend on the pin."""
        process = process if process is not None else default_process()
        wp = collapse_width(self.pull_up, switching_pin, self.wp_base)
        wn = collapse_width(self.pull_down, switching_pin, self.wn_base)
        pu = (
            Mosfet(MosfetParams(polarity=-1, width=wp, length=process.l_min), process)
            if wp is not None
            else None
        )
        pd = (
            Mosfet(MosfetParams(polarity=1, width=wn, length=process.l_min), process)
            if wn is not None
            else None
        )
        return pu, pd

    def flatten(self, output: str, vdd: str, gnd: str, prefix: str) -> list[FlatDevice]:
        """Expand both networks into individual transistors for simulation."""
        return expand_network(
            self.pull_up, -1, self.wp_base, output, vdd, prefix + ".pu"
        ) + expand_network(self.pull_down, 1, self.wn_base, output, gnd, prefix + ".pd")


def _network_width(net: Network, base_width: float) -> float:
    """Total transistor width in the network (all drain junctions)."""
    if isinstance(net, Dev):
        return base_width * net.width_scale
    return sum(_network_width(c, base_width) for c in net.children)


# -- topology builders -----------------------------------------------------


def inverter_topology(drive: str = "X1", sizing: SizingRules | None = None) -> CellTopology:
    sizing = sizing if sizing is not None else default_sizing()
    return CellTopology(
        pull_up=Dev("A"),
        pull_down=Dev("A"),
        wp_base=sizing.pmos_width(1, drive),
        wn_base=sizing.nmos_width(1, drive),
    )


def nand_topology(n_inputs: int, drive: str = "X1", sizing: SizingRules | None = None) -> CellTopology:
    sizing = sizing if sizing is not None else default_sizing()
    pins = [chr(ord("A") + i) for i in range(n_inputs)]
    return CellTopology(
        pull_up=parallel(*[Dev(p) for p in pins]),
        pull_down=series(*[Dev(p) for p in pins]),
        wp_base=sizing.pmos_width(1, drive),
        wn_base=sizing.nmos_width(n_inputs, drive),
    )


def nor_topology(n_inputs: int, drive: str = "X1", sizing: SizingRules | None = None) -> CellTopology:
    sizing = sizing if sizing is not None else default_sizing()
    pins = [chr(ord("A") + i) for i in range(n_inputs)]
    return CellTopology(
        pull_up=series(*[Dev(p) for p in pins]),
        pull_down=parallel(*[Dev(p) for p in pins]),
        wp_base=sizing.pmos_width(n_inputs, drive),
        wn_base=sizing.nmos_width(1, drive),
    )


def aoi21_topology(drive: str = "X1", sizing: SizingRules | None = None) -> CellTopology:
    """AOI21: Y = NOT(A*B + C)."""
    sizing = sizing if sizing is not None else default_sizing()
    return CellTopology(
        pull_up=series(parallel(Dev("A"), Dev("B")), Dev("C")),
        pull_down=parallel(series(Dev("A"), Dev("B")), Dev("C")),
        wp_base=sizing.pmos_width(2, drive),
        wn_base=sizing.nmos_width(2, drive),
    )


def oai21_topology(drive: str = "X1", sizing: SizingRules | None = None) -> CellTopology:
    """OAI21: Y = NOT((A+B) * C)."""
    sizing = sizing if sizing is not None else default_sizing()
    return CellTopology(
        pull_up=parallel(series(Dev("A"), Dev("B")), Dev("C")),
        pull_down=series(parallel(Dev("A"), Dev("B")), Dev("C")),
        wp_base=sizing.pmos_width(2, drive),
        wn_base=sizing.nmos_width(2, drive),
    )
