"""Standard-cell library.

A small static-CMOS library in the spirit of the paper's 0.5 um flow:
inverters, NAND/NOR gates (2-4 inputs) in three drive strengths, AOI/OAI
complex gates, and a D flip-flop.  Gates from richer netlist formats
(AND/OR/XOR/BUFF in ISCAS89 ``.bench``) are technology-mapped onto this set
by :mod:`repro.circuit.bench`.

Every combinational cell is single-stage static CMOS and therefore
*negative unate* in each input: a rising input can only cause a falling
output and vice versa.  The timing engine relies on this to decide which
transition an event propagates as.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.circuit import transistors as topo
from repro.circuit.transistors import CellTopology
from repro.devices.params import (
    ProcessParams,
    SizingRules,
    default_process,
    default_sizing,
)
from repro.errors import InputError

LogicFn = Callable[[Mapping[str, bool]], bool]


@dataclass(frozen=True)
class CellType:
    """A library cell definition.

    Attributes
    ----------
    name:
        Library name, e.g. ``"NAND2_X1"``.
    inputs:
        Input pin names in canonical order.
    output:
        Output pin name (``"Y"`` for gates, ``"Q"`` for the flip-flop).
    function:
        Boolean function of the inputs (``None`` for sequential cells).
    topology:
        Transistor-level structure (for the DFF this is its Q output
        driver).
    is_sequential:
        True for the flip-flop.
    clk_to_q:
        Intrinsic clock-to-output delay in seconds (sequential cells).
    unate:
        Map from input pin to +1 (positive unate) or -1 (negative unate).
    """

    name: str
    inputs: tuple[str, ...]
    output: str
    function: LogicFn | None
    topology: CellTopology
    is_sequential: bool = False
    clk_to_q: float = 0.0
    unate: Mapping[str, int] = field(default_factory=dict)

    def input_cap(self, pin: str, process: ProcessParams | None = None) -> float:
        """Input capacitance of ``pin`` in farads."""
        process = process if process is not None else default_process()
        if self.is_sequential:
            # The flip-flop presents one transmission-gate + inverter load
            # on D and a clock load; approximate both with the topology's
            # A-pin gate cap.
            return self.topology.input_cap("A", process)
        return self.topology.input_cap(pin, process)

    def output_parasitic_cap(self, process: ProcessParams | None = None) -> float:
        process = process if process is not None else default_process()
        return self.topology.output_parasitic_cap(process)

    def transistor_count(self) -> int:
        if self.is_sequential:
            # Classic transmission-gate DFF: ~20 devices besides the
            # output driver, which is what ``topology`` models.
            return 20 + self.topology.transistor_count()
        return self.topology.transistor_count()

    def evaluate(self, values: Mapping[str, bool]) -> bool:
        if self.function is None:
            raise InputError(f"{self.name} is sequential; no combinational function")
        return self.function(values)

    @property
    def base_name(self) -> str:
        """Name without the drive suffix, e.g. ``"NAND2"``."""
        return self.name.rsplit("_", 1)[0]

    @property
    def drive(self) -> str:
        return self.name.rsplit("_", 1)[1]


class Library:
    """A collection of cell types indexed by name."""

    def __init__(self, name: str = "lib"):
        self.name = name
        self._cells: dict[str, CellType] = {}

    def add(self, cell: CellType) -> None:
        if cell.name in self._cells:
            raise InputError(f"duplicate cell type {cell.name!r}")
        self._cells[cell.name] = cell

    def __getitem__(self, name: str) -> CellType:
        try:
            return self._cells[name]
        except KeyError:
            raise KeyError(
                f"unknown cell type {name!r}; available: {sorted(self._cells)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self):
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    def names(self) -> list[str]:
        return sorted(self._cells)


_DRIVES = ("X1", "X2", "X4")


def _neg_unate(pins: tuple[str, ...]) -> dict[str, int]:
    return {pin: -1 for pin in pins}


def build_library(
    process: ProcessParams | None = None,
    sizing: SizingRules | None = None,
) -> Library:
    """Construct the default library for a process/sizing combination."""
    process = process if process is not None else default_process()
    sizing = sizing if sizing is not None else default_sizing()
    lib = Library("repro05")

    def pins(n: int) -> tuple[str, ...]:
        return tuple(chr(ord("A") + i) for i in range(n))

    for drive in _DRIVES:
        lib.add(
            CellType(
                name=f"INV_{drive}",
                inputs=("A",),
                output="Y",
                function=lambda v: not v["A"],
                topology=topo.inverter_topology(drive, sizing),
                unate=_neg_unate(("A",)),
            )
        )
        for n in (2, 3, 4):
            p = pins(n)
            lib.add(
                CellType(
                    name=f"NAND{n}_{drive}",
                    inputs=p,
                    output="Y",
                    function=lambda v, p=p: not all(v[x] for x in p),
                    topology=topo.nand_topology(n, drive, sizing),
                    unate=_neg_unate(p),
                )
            )
            lib.add(
                CellType(
                    name=f"NOR{n}_{drive}",
                    inputs=p,
                    output="Y",
                    function=lambda v, p=p: not any(v[x] for x in p),
                    topology=topo.nor_topology(n, drive, sizing),
                    unate=_neg_unate(p),
                )
            )
        lib.add(
            CellType(
                name=f"AOI21_{drive}",
                inputs=("A", "B", "C"),
                output="Y",
                function=lambda v: not ((v["A"] and v["B"]) or v["C"]),
                topology=topo.aoi21_topology(drive, sizing),
                unate=_neg_unate(("A", "B", "C")),
            )
        )
        lib.add(
            CellType(
                name=f"OAI21_{drive}",
                inputs=("A", "B", "C"),
                output="Y",
                function=lambda v: not ((v["A"] or v["B"]) and v["C"]),
                topology=topo.oai21_topology(drive, sizing),
                unate=_neg_unate(("A", "B", "C")),
            )
        )
        lib.add(
            CellType(
                name=f"DFF_{drive}",
                inputs=("D", "CLK"),
                output="Q",
                function=None,
                topology=topo.inverter_topology(drive, sizing),
                is_sequential=True,
                clk_to_q=150e-12,
                unate={"D": 1, "CLK": 1},
            )
        )
    return lib


_DEFAULT_LIBRARY: Library | None = None


def default_library() -> Library:
    """Return the shared default library (built lazily)."""
    global _DEFAULT_LIBRARY
    if _DEFAULT_LIBRARY is None:
        _DEFAULT_LIBRARY = build_library()
    return _DEFAULT_LIBRARY
