"""Structural netlist checks.

Run before physical design and timing: catches undriven nets, floating
inputs, combinational cycles and other structural problems early, with
messages that name the offending objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.netlist import Circuit, NetlistError, Pin


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_circuit`."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_on_error(self) -> None:
        if self.errors:
            summary = "; ".join(self.errors[:10])
            raise NetlistError(
                f"netlist validation failed with {len(self.errors)} errors: {summary}"
            )


def validate_circuit(circuit: Circuit, max_fanout: int | None = None) -> ValidationReport:
    """Check structural well-formedness of a circuit.

    Errors: undriven nets with sinks, unconnected cell pins, combinational
    cycles, multiply-driven nets (prevented at construction but re-checked),
    sequential cells without a clock.
    Warnings: dangling nets (driver but no sinks), unused primary inputs,
    fanout above ``max_fanout``.
    """
    report = ValidationReport()

    for net in circuit.nets.values():
        if net.driver is None and net.sinks:
            sink_names = ", ".join(s.full_name for s in net.sinks[:3])
            report.errors.append(f"net {net.name!r} has sinks ({sink_names}) but no driver")
        if net.driver is not None and not net.sinks:
            if not net.is_clock:
                report.warnings.append(f"net {net.name!r} is dangling (no sinks)")
        if max_fanout is not None and net.fanout > max_fanout:
            report.warnings.append(
                f"net {net.name!r} fanout {net.fanout} exceeds {max_fanout}"
            )

    for cell in circuit.cells.values():
        for pin in cell.pins.values():
            if pin.net is None:
                report.errors.append(f"pin {pin.full_name} is unconnected")
        if cell.is_sequential:
            clk = cell.pins.get("CLK")
            if clk is None or clk.net is None or not clk.net.is_clock:
                # The pin may connect to a clock-tree net, which is marked.
                if clk is not None and clk.net is not None and _traces_to_clock(clk):
                    continue
                report.errors.append(
                    f"flip-flop {cell.name!r} CLK pin is not driven by a clock net"
                )

    for name, port in circuit.inputs.items():
        net = port.net
        if net is not None and not net.sinks and not net.is_clock:
            report.warnings.append(f"primary input {name!r} is unused")

    try:
        circuit.levelize()
    except NetlistError as exc:
        report.errors.append(str(exc))

    return report


def _traces_to_clock(pin: Pin) -> bool:
    """Walk backwards through buffers to see if the pin's net originates
    at the clock root."""
    net = pin.net
    for _ in range(64):
        if net is None:
            return False
        if net.is_clock:
            return True
        driver = net.driver_cell()
        if driver is None or driver.ctype.base_name != "INV":
            return False
        net = driver.pins["A"].net
    return False
