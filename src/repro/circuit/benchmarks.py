"""Embedded benchmark netlists.

The genuine ISCAS89 s27 netlist (small enough to embed and widely
published) plus re-exports of the synthetic stand-ins for the paper's three
evaluation circuits.  See :mod:`repro.circuit.generators` for the
substitution rationale.
"""

from __future__ import annotations

from repro.circuit.bench import BenchNetlist, map_to_circuit, parse_bench
from repro.circuit.generators import (  # noqa: F401  (re-export)
    s35932_like,
    s38417_like,
    s38584_like,
)
from repro.circuit.library import Library
from repro.circuit.netlist import Circuit

S27_BENCH = """\
# s27 (ISCAS89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
"""


def s27_bench() -> BenchNetlist:
    """The parsed s27 logical netlist."""
    return parse_bench(S27_BENCH, name="s27")


def s27(library: Library | None = None) -> Circuit:
    """s27 technology-mapped onto the default library."""
    return map_to_circuit(s27_bench(), library)


PAPER_CIRCUITS = {
    "s35932": s35932_like,
    "s38417": s38417_like,
    "s38584": s38584_like,
}

PAPER_CELL_COUNTS = {
    "s35932": 17900,
    "s38417": 23922,
    "s38584": 20812,
}


def resolve_circuit(spec: str, scale: float = 0.05) -> Circuit:
    """Resolve a netlist specifier to a mapped circuit.

    The shared vocabulary of the CLI and the timing-query service:

    * ``s27`` -- the embedded genuine ISCAS89 benchmark,
    * ``gen:<name>`` -- a synthetic paper-circuit stand-in sized by
      ``scale`` (``gen:s35932`` / ``gen:s38417`` / ``gen:s38584``),
    * anything else -- a path to a ``.bench`` file.
    """
    from repro.circuit.bench import load_bench
    from repro.errors import InputError

    if spec == "s27":
        return s27()
    if spec.startswith("gen:"):
        name = spec[4:]
        generator = PAPER_CIRCUITS.get(name)
        if generator is None:
            raise InputError(
                f"unknown generator {name!r}; have {sorted(PAPER_CIRCUITS)}"
            )
        return generator(scale=scale)
    return map_to_circuit(load_bench(spec))
