"""ISCAS89 ``.bench`` format support.

The paper evaluates on "circuits of the ISCAS89 sequential benchmarks".
This module parses and writes the ``.bench`` netlist format those benchmarks
are distributed in, and technology-maps the generic gates (AND/OR/XOR/BUFF
...) onto the static-CMOS library of :mod:`repro.circuit.library`.

Format example::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G5 = DFF(G10)
    G14 = NOT(G0)
    G8 = AND(G14, G6)
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.circuit.library import Library, default_library
from repro.circuit.netlist import Circuit, NetlistError
from repro.errors import InputError

_KNOWN_GATES = {
    "AND",
    "NAND",
    "OR",
    "NOR",
    "NOT",
    "BUFF",
    "BUF",
    "XOR",
    "XNOR",
    "DFF",
}

_LINE_RE = re.compile(
    r"^\s*(?P<out>[\w.\[\]$]+)\s*=\s*(?P<type>\w+)\s*\(\s*(?P<ins>[^)]*)\)\s*$"
)
_PORT_RE = re.compile(r"^\s*(?P<dir>INPUT|OUTPUT)\s*\(\s*(?P<name>[\w.\[\]$]+)\s*\)\s*$")


class BenchParseError(InputError):
    """Raised on malformed ``.bench`` input."""


@dataclass
class BenchGate:
    """One gate line: ``output = TYPE(inputs...)``."""

    output: str
    gtype: str
    inputs: list[str]


@dataclass
class BenchNetlist:
    """A parsed ``.bench`` file (logical netlist, pre-mapping)."""

    name: str = "bench"
    inputs: list[str] = field(default_factory=list)
    outputs: list[str] = field(default_factory=list)
    gates: dict[str, BenchGate] = field(default_factory=dict)

    def flip_flop_count(self) -> int:
        return sum(1 for g in self.gates.values() if g.gtype == "DFF")

    def signal_fanout(self) -> dict[str, int]:
        """Number of gate inputs / primary outputs each signal feeds."""
        fanout: dict[str, int] = {}
        for gate in self.gates.values():
            for sig in gate.inputs:
                fanout[sig] = fanout.get(sig, 0) + 1
        for sig in self.outputs:
            fanout[sig] = fanout.get(sig, 0) + 1
        return fanout


def parse_bench(text: str, name: str = "bench") -> BenchNetlist:
    """Parse ``.bench`` source text."""
    netlist = BenchNetlist(name=name)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        port = _PORT_RE.match(line)
        if port:
            target = netlist.inputs if port.group("dir") == "INPUT" else netlist.outputs
            target.append(port.group("name"))
            continue
        gate = _LINE_RE.match(line)
        if not gate:
            raise BenchParseError(f"line {lineno}: cannot parse {raw!r}")
        gtype = gate.group("type").upper()
        if gtype not in _KNOWN_GATES:
            raise BenchParseError(f"line {lineno}: unknown gate type {gtype!r}")
        if gtype == "BUF":
            gtype = "BUFF"
        inputs = [s.strip() for s in gate.group("ins").split(",") if s.strip()]
        if not inputs:
            raise BenchParseError(f"line {lineno}: gate with no inputs: {raw!r}")
        if gtype in ("NOT", "BUFF", "DFF") and len(inputs) != 1:
            raise BenchParseError(
                f"line {lineno}: {gtype} takes exactly one input, got {len(inputs)}"
            )
        out = gate.group("out")
        if out in netlist.gates:
            raise BenchParseError(f"line {lineno}: signal {out!r} driven twice")
        netlist.gates[out] = BenchGate(out, gtype, inputs)
    _check_driven(netlist)
    return netlist


def _check_driven(netlist: BenchNetlist) -> None:
    driven = set(netlist.inputs) | set(netlist.gates)
    for gate in netlist.gates.values():
        for sig in gate.inputs:
            if sig not in driven:
                raise BenchParseError(
                    f"signal {sig!r} used by {gate.output!r} is never driven"
                )
    for sig in netlist.outputs:
        if sig not in driven:
            raise BenchParseError(f"primary output {sig!r} is never driven")


def write_bench(netlist: BenchNetlist) -> str:
    """Serialise back to ``.bench`` text."""
    lines = [f"# {netlist.name}"]
    lines.extend(f"INPUT({sig})" for sig in netlist.inputs)
    lines.extend(f"OUTPUT({sig})" for sig in netlist.outputs)
    lines.append("")
    # DFFs first by ISCAS convention, then combinational gates.
    seq = [g for g in netlist.gates.values() if g.gtype == "DFF"]
    comb = [g for g in netlist.gates.values() if g.gtype != "DFF"]
    for gate in seq + comb:
        lines.append(f"{gate.output} = {gate.gtype}({', '.join(gate.inputs)})")
    lines.append("")
    return "\n".join(lines)


def load_bench(path: str, name: str | None = None) -> BenchNetlist:
    """Parse a ``.bench`` file from disk."""
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as exc:
        raise BenchParseError(f"cannot read bench file {path!r}: {exc}") from exc
    if name is None:
        name = path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
    return parse_bench(text, name=name)


# -- technology mapping ------------------------------------------------------


class _Mapper:
    """Maps a :class:`BenchNetlist` onto library cells.

    Generic gates decompose as follows (all single-stage CMOS in the end):

    ========  =======================================================
    NOT       INV
    BUFF      INV + INV
    NAND/NOR  direct up to 4 inputs, otherwise group-and-combine trees
    AND/OR    NAND/NOR + INV
    XOR       four NAND2 (chained for >2 inputs)
    XNOR      XOR + INV
    DFF       DFF (clocked by the global clock net)
    ========  =======================================================

    Drive strengths are assigned by fanout ("the gates are sized" per the
    paper's experimental setup): fanout >= 6 -> X4, >= 3 -> X2, else X1.
    """

    def __init__(self, netlist: BenchNetlist, library: Library, clock_name: str):
        self.netlist = netlist
        self.library = library
        self.clock_name = clock_name
        self.circuit = Circuit(netlist.name, library)
        self.fanout = netlist.signal_fanout()
        self._uid = 0

    def _fresh(self, base: str, kind: str) -> str:
        self._uid += 1
        return f"{base}__{kind}{self._uid}"

    def _drive_for(self, signal: str) -> str:
        fanout = self.fanout.get(signal, 1)
        if fanout >= 6:
            return "X4"
        if fanout >= 3:
            return "X2"
        return "X1"

    def run(self) -> Circuit:
        circuit = self.circuit
        if self.netlist.flip_flop_count() > 0:
            circuit.add_clock(self.clock_name)
        for sig in self.netlist.inputs:
            circuit.add_input(sig)
        for gate in self.netlist.gates.values():
            self._map_gate(gate)
        for sig in self.netlist.outputs:
            circuit.add_output(f"PO_{sig}", net_name=sig)
        return circuit

    # Each _emit_* helper drives net ``out`` from nets ``ins``.

    def _map_gate(self, gate: BenchGate) -> None:
        out, ins = gate.output, gate.inputs
        gtype = gate.gtype
        if gtype == "DFF":
            self._emit_cell("DFF", out, {"D": ins[0], "CLK": self.clock_name}, out)
        elif gtype == "NOT":
            self._emit_cell("INV", out, {"A": ins[0]}, out)
        elif gtype == "BUFF":
            mid = self._fresh(out, "w")
            self._emit_cell("INV", mid, {"A": ins[0]}, out, drive="X1")
            self._emit_cell("INV", out, {"A": mid}, out)
        elif gtype in ("NAND", "NOR"):
            self._emit_inverting_tree(gtype, out, ins, invert_total=True)
        elif gtype in ("AND", "OR"):
            base = "NAND" if gtype == "AND" else "NOR"
            mid = self._fresh(out, "w")
            self._emit_inverting_tree(base, mid, ins, invert_total=True, final_signal=out)
            self._emit_cell("INV", out, {"A": mid}, out)
        elif gtype == "XOR":
            self._emit_xor(out, ins)
        elif gtype == "XNOR":
            mid = self._fresh(out, "w")
            self._emit_xor(mid, ins, final_signal=out)
            self._emit_cell("INV", out, {"A": mid}, out)
        else:  # pragma: no cover - parser rejects unknown types
            raise NetlistError(f"unmappable gate type {gtype!r}")

    def _emit_cell(
        self,
        base: str,
        out_net: str,
        conns_in: dict[str, str],
        drive_signal: str,
        drive: str | None = None,
    ) -> None:
        ctype = self.library[
            f"{base}_{drive if drive is not None else self._drive_for(drive_signal)}"
        ]
        conns = dict(conns_in)
        conns[ctype.output] = out_net
        self.circuit.add_cell(ctype.name, self._fresh(out_net, "g"), conns)

    def _emit_inverting_tree(
        self,
        base: str,
        out: str,
        ins: list[str],
        invert_total: bool,
        final_signal: str | None = None,
    ) -> None:
        """Emit NAND/NOR of arbitrarily many inputs as a tree.

        For <= 4 inputs a single gate suffices.  For more, inputs are
        grouped, each group is reduced with the *non-inverted* function
        (gate + INV), and the group outputs feed a final gate.
        """
        final_signal = final_signal if final_signal is not None else out
        if len(ins) == 1:
            self._emit_cell("INV", out, {"A": ins[0]}, final_signal)
            return
        if len(ins) <= 4:
            pins = {chr(ord("A") + i): sig for i, sig in enumerate(ins)}
            self._emit_cell(f"{base}{len(ins)}", out, pins, final_signal)
            return
        groups: list[str] = []
        for start in range(0, len(ins), 4):
            chunk = ins[start : start + 4]
            if len(chunk) == 1:
                groups.append(chunk[0])
                continue
            inv_out = self._fresh(out, "w")
            grp_out = self._fresh(out, "w")
            pins = {chr(ord("A") + i): sig for i, sig in enumerate(chunk)}
            self._emit_cell(f"{base}{len(chunk)}", inv_out, pins, final_signal, drive="X1")
            self._emit_cell("INV", grp_out, {"A": inv_out}, final_signal, drive="X1")
            groups.append(grp_out)
        self._emit_inverting_tree(base, out, groups, invert_total, final_signal)

    def _emit_xor(self, out: str, ins: list[str], final_signal: str | None = None) -> None:
        """XOR as four NAND2 gates; wider XORs chain pairwise."""
        final_signal = final_signal if final_signal is not None else out
        acc = ins[0]
        for index, nxt in enumerate(ins[1:]):
            last = index == len(ins) - 2
            target = out if last else self._fresh(out, "w")
            n1 = self._fresh(out, "w")
            n2 = self._fresh(out, "w")
            n3 = self._fresh(out, "w")
            self._emit_cell("NAND2", n1, {"A": acc, "B": nxt}, final_signal, drive="X1")
            self._emit_cell("NAND2", n2, {"A": acc, "B": n1}, final_signal, drive="X1")
            self._emit_cell("NAND2", n3, {"A": nxt, "B": n1}, final_signal, drive="X1")
            self._emit_cell(
                "NAND2",
                target,
                {"A": n2, "B": n3},
                final_signal,
                drive=None if last else "X1",
            )
            acc = target


def map_to_circuit(
    netlist: BenchNetlist,
    library: Library | None = None,
    clock_name: str = "CLK",
) -> Circuit:
    """Technology-map a parsed ``.bench`` netlist onto the library."""
    library = library if library is not None else default_library()
    return _Mapper(netlist, library, clock_name).run()
