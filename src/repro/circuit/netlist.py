"""Gate-level netlist data structures.

A :class:`Circuit` is a synchronous gate-level netlist: cells (library
instances) connected by nets, with primary inputs/outputs and a clock.  The
static timing analyzer consumes the *combinational view*: a DAG whose
sources are primary inputs and flip-flop outputs and whose sinks are primary
outputs and flip-flop data inputs (Section 4 of the paper).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.circuit.library import CellType, Library, default_library
from repro.errors import InputError


class NetlistError(InputError):
    """Raised for structurally invalid netlist operations."""


@dataclass(eq=False)
class Pin:
    """One terminal of a cell instance."""

    cell: "Cell"
    name: str
    direction: str  # "input" | "output"
    net: "Net | None" = None

    @property
    def full_name(self) -> str:
        return f"{self.cell.name}/{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pin({self.full_name})"


@dataclass(eq=False)
class Port:
    """A primary input or output of the circuit."""

    name: str
    direction: str  # "input" | "output"
    net: "Net | None" = None

    @property
    def full_name(self) -> str:
        return self.name


class Net:
    """An electrical node connecting one driver to its fanout."""

    __slots__ = ("name", "driver", "sinks", "is_clock")

    def __init__(self, name: str):
        self.name = name
        self.driver: Pin | Port | None = None
        self.sinks: list[Pin | Port] = []
        self.is_clock = False

    @property
    def fanout(self) -> int:
        return len(self.sinks)

    def sink_cells(self) -> Iterator["Cell"]:
        for sink in self.sinks:
            if isinstance(sink, Pin):
                yield sink.cell

    def driver_cell(self) -> "Cell | None":
        if isinstance(self.driver, Pin):
            return self.driver.cell
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Net({self.name}, fanout={self.fanout})"


class Cell:
    """An instance of a library cell."""

    __slots__ = ("name", "ctype", "pins")

    def __init__(self, name: str, ctype: CellType):
        self.name = name
        self.ctype = ctype
        self.pins: dict[str, Pin] = {}
        for pin_name in ctype.inputs:
            self.pins[pin_name] = Pin(self, pin_name, "input")
        self.pins[ctype.output] = Pin(self, ctype.output, "output")

    @property
    def output_pin(self) -> Pin:
        return self.pins[self.ctype.output]

    @property
    def input_pins(self) -> list[Pin]:
        return [self.pins[name] for name in self.ctype.inputs]

    @property
    def is_sequential(self) -> bool:
        return self.ctype.is_sequential

    def input_nets(self) -> list[Net]:
        nets = []
        for pin in self.input_pins:
            if pin.net is None:
                raise NetlistError(f"unconnected input pin {pin.full_name}")
            nets.append(pin.net)
        return nets

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cell({self.name}:{self.ctype.name})"


class Circuit:
    """A synchronous gate-level netlist."""

    def __init__(self, name: str, library: Library | None = None):
        self.name = name
        self.library = library if library is not None else default_library()
        self.nets: dict[str, Net] = {}
        self.cells: dict[str, Cell] = {}
        self.inputs: dict[str, Port] = {}
        self.outputs: dict[str, Port] = {}
        self.clock_net_name: str | None = None

    # -- construction ------------------------------------------------------

    def net(self, name: str) -> Net:
        """Get or create the net with the given name."""
        existing = self.nets.get(name)
        if existing is not None:
            return existing
        net = Net(name)
        self.nets[name] = net
        return net

    def add_input(self, name: str, net_name: str | None = None) -> Port:
        if name in self.inputs or name in self.outputs:
            raise NetlistError(f"duplicate port {name!r}")
        port = Port(name, "input")
        net = self.net(net_name if net_name is not None else name)
        if net.driver is not None:
            raise NetlistError(f"net {net.name!r} already driven")
        net.driver = port
        port.net = net
        self.inputs[name] = port
        return port

    def add_output(self, name: str, net_name: str | None = None) -> Port:
        if name in self.inputs or name in self.outputs:
            raise NetlistError(f"duplicate port {name!r}")
        port = Port(name, "output")
        net = self.net(net_name if net_name is not None else name)
        net.sinks.append(port)
        port.net = net
        self.outputs[name] = port
        return port

    def add_clock(self, name: str = "CLK") -> Port:
        """Add the clock primary input and mark its net."""
        port = self.add_input(name)
        assert port.net is not None
        port.net.is_clock = True
        self.clock_net_name = port.net.name
        return port

    def add_cell(self, ctype_name: str, name: str, connections: dict[str, str]) -> Cell:
        """Instantiate a library cell.

        ``connections`` maps pin names to net names; nets are created on
        demand.  Exactly the cell's pins must be connected.
        """
        if name in self.cells:
            raise NetlistError(f"duplicate cell name {name!r}")
        ctype = self.library[ctype_name]
        cell = Cell(name, ctype)
        expected = set(cell.pins)
        given = set(connections)
        if expected != given:
            raise NetlistError(
                f"cell {name!r} ({ctype_name}): expected pins {sorted(expected)}, "
                f"got {sorted(given)}"
            )
        for pin_name, net_name in connections.items():
            pin = cell.pins[pin_name]
            net = self.net(net_name)
            if pin.direction == "output":
                if net.driver is not None:
                    raise NetlistError(
                        f"net {net_name!r} already driven by "
                        f"{net.driver.full_name}; cannot add {pin.full_name}"
                    )
                net.driver = pin
            else:
                net.sinks.append(pin)
            pin.net = net
        self.cells[name] = cell
        return cell

    # -- queries -----------------------------------------------------------

    @property
    def clock_net(self) -> Net | None:
        if self.clock_net_name is None:
            return None
        return self.nets[self.clock_net_name]

    def flip_flops(self) -> list[Cell]:
        return [c for c in self.cells.values() if c.is_sequential]

    def combinational_cells(self) -> list[Cell]:
        return [c for c in self.cells.values() if not c.is_sequential]

    def cell_count(self) -> int:
        return len(self.cells)

    # -- combinational DAG -------------------------------------------------

    def timing_sources(self) -> list[Net]:
        """Nets where combinational propagation starts: primary-input nets
        and flip-flop output nets.  The clock net is handled separately (it
        participates as a coupling aggressor but is not a data source)."""
        sources: list[Net] = []
        seen: set[str] = set()
        for port in self.inputs.values():
            net = port.net
            assert net is not None
            if not net.is_clock and net.name not in seen:
                sources.append(net)
                seen.add(net.name)
        for ff in self.flip_flops():
            net = ff.output_pin.net
            if net is not None and net.name not in seen:
                sources.append(net)
                seen.add(net.name)
        return sources

    def timing_endpoints(self) -> list[Pin | Port]:
        """Capture points: primary outputs and flip-flop data inputs."""
        endpoints: list[Pin | Port] = list(self.outputs.values())
        for ff in self.flip_flops():
            for pin in ff.input_pins:
                if pin.name == "D":
                    endpoints.append(pin)
        return endpoints

    def levelize(self) -> list[list[Cell]]:
        """Topologically level the combinational cells.

        Level of a cell = 1 + max level of its combinational fan-in cells;
        cells fed only by sources are level 0.  Raises on combinational
        cycles.
        """
        indegree: dict[str, int] = {}
        ready: deque[Cell] = deque()
        for cell in self.cells.values():
            if cell.is_sequential:
                continue
            count = 0
            for net in cell.input_nets():
                driver = net.driver_cell()
                if driver is not None and not driver.is_sequential:
                    count += 1
            indegree[cell.name] = count
            if count == 0:
                ready.append(cell)

        level_of: dict[str, int] = {}
        levels: list[list[Cell]] = []
        processed = 0
        while ready:
            cell = ready.popleft()
            processed += 1
            level = 0
            for net in cell.input_nets():
                driver = net.driver_cell()
                if driver is not None and not driver.is_sequential:
                    level = max(level, level_of[driver.name] + 1)
            level_of[cell.name] = level
            while len(levels) <= level:
                levels.append([])
            levels[level].append(cell)
            out_net = cell.output_pin.net
            if out_net is None:
                continue
            for sink_cell in out_net.sink_cells():
                if sink_cell.is_sequential:
                    continue
                indegree[sink_cell.name] -= 1
                if indegree[sink_cell.name] == 0:
                    ready.append(sink_cell)

        total = len(indegree)
        if processed != total:
            stuck = [n for n, d in indegree.items() if d > 0]
            raise NetlistError(
                f"combinational cycle detected; {total - processed} cells "
                f"unreachable (e.g. {stuck[:5]})"
            )
        return levels

    def depth(self) -> int:
        """Number of logic levels in the combinational core."""
        return len(self.levelize())

    def stats(self) -> "CircuitStats":
        fanouts = [net.fanout for net in self.nets.values() if net.fanout > 0]
        return CircuitStats(
            name=self.name,
            cells=len(self.cells),
            flip_flops=len(self.flip_flops()),
            nets=len(self.nets),
            inputs=len(self.inputs),
            outputs=len(self.outputs),
            depth=self.depth(),
            max_fanout=max(fanouts) if fanouts else 0,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Circuit({self.name}, cells={len(self.cells)}, nets={len(self.nets)})"


@dataclass(frozen=True)
class CircuitStats:
    """Summary statistics of a circuit."""

    name: str
    cells: int
    flip_flops: int
    nets: int
    inputs: int
    outputs: int
    depth: int
    max_fanout: int

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.cells} cells ({self.flip_flops} FFs), "
            f"{self.nets} nets, {self.inputs} PIs, {self.outputs} POs, "
            f"depth {self.depth}, max fanout {self.max_fanout}"
        )
