"""Gate-level netlist substrate: data structures, library, benchmarks."""

from repro.circuit.bench import (
    BenchGate,
    BenchNetlist,
    BenchParseError,
    load_bench,
    map_to_circuit,
    parse_bench,
    write_bench,
)
from repro.circuit.benchmarks import (
    resolve_circuit,
    s27,
    s27_bench,
    s35932_like,
    s38417_like,
    s38584_like,
)
from repro.circuit.generators import GeneratorSpec, add_clock_tree, generate_circuit
from repro.circuit.library import CellType, Library, build_library, default_library
from repro.circuit.netlist import Cell, Circuit, CircuitStats, Net, NetlistError, Pin, Port
from repro.circuit.validate import ValidationReport, validate_circuit

__all__ = [
    "BenchGate",
    "BenchNetlist",
    "BenchParseError",
    "Cell",
    "CellType",
    "Circuit",
    "CircuitStats",
    "GeneratorSpec",
    "Library",
    "Net",
    "NetlistError",
    "Pin",
    "Port",
    "ValidationReport",
    "add_clock_tree",
    "build_library",
    "default_library",
    "generate_circuit",
    "load_bench",
    "map_to_circuit",
    "parse_bench",
    "resolve_circuit",
    "s27",
    "s27_bench",
    "s35932_like",
    "s38417_like",
    "s38584_like",
    "validate_circuit",
    "write_bench",
]
