"""Simulator circuit container and node registry.

Node ``"0"`` (alias ``"gnd"``) is ground.  All other node names are
assigned consecutive indices in order of first use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.devices.mosfet import Mosfet
from repro.spice.elements import Capacitor, MosfetElement, PwlSource, Resistor

GROUND_NAMES = ("0", "gnd", "GND")


class SimCircuit:
    """A flat transistor-level circuit for transient simulation."""

    def __init__(self, name: str = "sim"):
        self.name = name
        self._node_index: dict[str, int] = {}
        self.resistors: list[Resistor] = []
        self.capacitors: list[Capacitor] = []
        self.sources: list[PwlSource] = []
        self.mosfets: list[MosfetElement] = []

    # -- node bookkeeping ----------------------------------------------------

    def node(self, name: str) -> int:
        """Index of a node; ground is -1.  Creates the node on first use."""
        if name in GROUND_NAMES:
            return -1
        index = self._node_index.get(name)
        if index is None:
            index = len(self._node_index)
            self._node_index[name] = index
        return index

    @property
    def node_count(self) -> int:
        return len(self._node_index)

    @property
    def node_names(self) -> list[str]:
        return list(self._node_index)

    def has_node(self, name: str) -> bool:
        return name in self._node_index or name in GROUND_NAMES

    # -- element factories -----------------------------------------------------

    def add_resistor(self, a: str, b: str, resistance: float) -> Resistor:
        element = Resistor(a, b, resistance)
        self.node(a)
        self.node(b)
        self.resistors.append(element)
        return element

    def add_capacitor(self, a: str, b: str, capacitance: float) -> Capacitor:
        element = Capacitor(a, b, capacitance)
        self.node(a)
        self.node(b)
        self.capacitors.append(element)
        return element

    def add_source(self, source: PwlSource) -> PwlSource:
        self.node(source.a)
        self.node(source.b)
        self.sources.append(source)
        return source

    def add_vdc(self, node: str, voltage: float) -> PwlSource:
        return self.add_source(PwlSource.dc(node, voltage))

    def add_mosfet(
        self, name: str, drain: str, gate: str, source: str, device: Mosfet
    ) -> MosfetElement:
        element = MosfetElement(name, drain, gate, source, device)
        for terminal in (drain, gate, source):
            self.node(terminal)
        self.mosfets.append(element)
        return element

    def stats(self) -> dict[str, int]:
        return {
            "nodes": self.node_count,
            "resistors": len(self.resistors),
            "capacitors": len(self.capacitors),
            "sources": len(self.sources),
            "mosfets": len(self.mosfets),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"SimCircuit({self.name}: {s['nodes']} nodes, {s['mosfets']} fets, "
            f"{s['resistors']} R, {s['capacitors']} C, {s['sources']} V)"
        )
