"""SPICE deck export.

Writes a :class:`~repro.spice.netlist.SimCircuit` as a standard SPICE
netlist (``.sp``) so the validation circuits can be re-run in an external
simulator.  Devices reference LEVEL=1 ``.MODEL`` cards fitted from the
process constants; the export is an approximation of this repository's
smooth device model (which has no SPICE-standard equivalent), close enough
for cross-checking waveforms.
"""

from __future__ import annotations

import re

from repro.devices.params import ProcessParams, default_process
from repro.spice.netlist import GROUND_NAMES, SimCircuit


def _node(name: str) -> str:
    """SPICE-safe node name."""
    if name in GROUND_NAMES:
        return "0"
    return re.sub(r"[^A-Za-z0-9_]", "_", name)


def write_spice(
    circuit: SimCircuit,
    process: ProcessParams | None = None,
    t_stop: float = 2e-9,
    t_step: float = 1e-12,
    probes: list[str] | None = None,
) -> str:
    """Render the circuit as SPICE deck text."""
    process = process if process is not None else default_process()
    lines: list[str] = [f"* {circuit.name} -- exported by repro", ""]

    lines.append(
        f".MODEL NMOS1 NMOS (LEVEL=1 VTO={process.vtn:.3f} "
        f"KP={process.kp_n:.4g} LAMBDA={process.lambda_n:.3f})"
    )
    lines.append(
        f".MODEL PMOS1 PMOS (LEVEL=1 VTO={process.vtp:.3f} "
        f"KP={process.kp_p:.4g} LAMBDA={process.lambda_p:.3f})"
    )
    lines.append("")

    for index, resistor in enumerate(circuit.resistors):
        lines.append(
            f"R{index} {_node(resistor.a)} {_node(resistor.b)} {resistor.resistance:.6g}"
        )
    for index, capacitor in enumerate(circuit.capacitors):
        lines.append(
            f"C{index} {_node(capacitor.a)} {_node(capacitor.b)} "
            f"{capacitor.capacitance:.6g}"
        )
    for index, source in enumerate(circuit.sources):
        points = " ".join(f"{t:.6g} {v:.6g}" for t, v in source.points)
        lines.append(
            f"V{index} {_node(source.a)} {_node(source.b)} PWL({points})"
        )
    for index, fet in enumerate(circuit.mosfets):
        model = "NMOS1" if fet.device.params.polarity > 0 else "PMOS1"
        bulk = "0" if fet.device.params.polarity > 0 else _node("vdd")
        lines.append(
            f"M{index} {_node(fet.drain)} {_node(fet.gate)} {_node(fet.source)} "
            f"{bulk} {model} W={fet.device.params.width:.4g} "
            f"L={fet.device.params.length:.4g}"
        )

    lines.append("")
    lines.append(f".TRAN {t_step:.4g} {t_stop:.4g}")
    if probes:
        lines.append(".PRINT TRAN " + " ".join(f"V({_node(p)})" for p in probes))
    lines.append(".END")
    lines.append("")
    return "\n".join(lines)


def save_spice(
    path: str,
    circuit: SimCircuit,
    process: ProcessParams | None = None,
    t_stop: float = 2e-9,
    t_step: float = 1e-12,
    probes: list[str] | None = None,
) -> None:
    with open(path, "w") as handle:
        handle.write(write_spice(circuit, process, t_stop, t_step, probes))
