"""Modified nodal analysis assembly.

Builds the constant conductance matrix ``G`` (resistors + source
branches), the capacitance matrix ``C`` and a vectorised MOSFET bank, and
provides the per-Newton-iteration assembly of the residual and Jacobian.

The unknown vector is ``x = [node voltages..., source branch currents...]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.mosfet import ids_generic
from repro.spice.netlist import SimCircuit

_FD_STEP = 1e-5  # finite-difference step for device derivatives (volts)


class FetBank:
    """All MOSFETs of a circuit as parallel parameter arrays.

    One vectorised evaluation yields every device's current and its
    derivatives, keeping the Newton assembly cost independent of the
    device count in Python-overhead terms.
    """

    def __init__(self, circuit: SimCircuit):
        fets = circuit.mosfets
        self.count = len(fets)
        self.d_idx = np.array([circuit.node(f.drain) for f in fets], dtype=int)
        self.g_idx = np.array([circuit.node(f.gate) for f in fets], dtype=int)
        self.s_idx = np.array([circuit.node(f.source) for f in fets], dtype=int)
        self.polarity = np.array([f.device.params.polarity for f in fets], dtype=float)
        self.beta = np.array(
            [f.device.process.kp_n if f.device.params.polarity > 0 else f.device.process.kp_p
             for f in fets],
            dtype=float,
        ) * np.array([f.device.params.wl for f in fets], dtype=float)
        self.vt = np.array(
            [f.device.process.vtn if f.device.params.polarity > 0 else abs(f.device.process.vtp)
             for f in fets],
            dtype=float,
        )
        self.lam = np.array(
            [f.device.process.lambda_n if f.device.params.polarity > 0 else f.device.process.lambda_p
             for f in fets],
            dtype=float,
        )
        self.n_vt = np.array(
            [f.device.process.n_sub * f.device.process.thermal_voltage for f in fets],
            dtype=float,
        )

        self._build_stamp_pattern()

    def _build_stamp_pattern(self) -> None:
        """Precompute the COO sparsity pattern of the device Jacobian.

        Six entry kinds per device -- (d,d)+gds, (d,g)+gm, (d,s)-(gm+gds),
        (s,d)-gds, (s,g)-gm, (s,s)+(gm+gds) -- filtered for grounded
        terminals.  Each iteration only the values change.
        """
        rows: list[np.ndarray] = []
        cols: list[np.ndarray] = []
        # Value selectors: which device and which coefficient combination.
        dev: list[np.ndarray] = []
        kind: list[np.ndarray] = []  # 0:+gds 1:+gm 2:-(gm+gds) 3:-gds 4:-gm 5:+(gm+gds)
        d, g, s = self.d_idx, self.g_idx, self.s_idx
        index = np.arange(self.count)
        for row, col, k in (
            (d, d, 0),
            (d, g, 1),
            (d, s, 2),
            (s, d, 3),
            (s, g, 4),
            (s, s, 5),
        ):
            mask = (row >= 0) & (col >= 0)
            rows.append(row[mask])
            cols.append(col[mask])
            dev.append(index[mask])
            kind.append(np.full(mask.sum(), k, dtype=int))
        self.stamp_rows = np.concatenate(rows) if rows else np.zeros(0, int)
        self.stamp_cols = np.concatenate(cols) if cols else np.zeros(0, int)
        self._stamp_dev = np.concatenate(dev) if dev else np.zeros(0, int)
        self._stamp_kind = np.concatenate(kind) if kind else np.zeros(0, int)

    def stamp_values(self, gm: np.ndarray, gds: np.ndarray) -> np.ndarray:
        """Jacobian values matching :attr:`stamp_rows`/:attr:`stamp_cols`."""
        gs = gm + gds
        table = np.stack([gds, gm, -gs, -gds, -gm, gs])
        return table[self._stamp_kind, self._stamp_dev]

    def residual_contribution(self, ids: np.ndarray, n_nodes: int) -> np.ndarray:
        """KCL residual vector of the device currents."""
        res = np.zeros(n_nodes)
        mask_d = self.d_idx >= 0
        np.add.at(res, self.d_idx[mask_d], ids[mask_d])
        mask_s = self.s_idx >= 0
        np.add.at(res, self.s_idx[mask_s], -ids[mask_s])
        return res

    def _terminal_voltages(self, v_nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        def at(idx: np.ndarray) -> np.ndarray:
            out = np.zeros(self.count)
            mask = idx >= 0
            out[mask] = v_nodes[idx[mask]]
            return out

        vd, vg, vs = at(self.d_idx), at(self.g_idx), at(self.s_idx)
        return vg - vs, vd - vs

    def evaluate(self, v_nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Currents and derivatives: ``(ids, gm, gds)`` per device."""
        if self.count == 0:
            empty = np.zeros(0)
            return empty, empty, empty
        vgs, vds = self._terminal_voltages(v_nodes)
        ids = ids_generic(vgs, vds, self.polarity, self.beta, self.vt, self.lam, self.n_vt)
        h = _FD_STEP
        gm = (
            ids_generic(vgs + h, vds, self.polarity, self.beta, self.vt, self.lam, self.n_vt)
            - ids_generic(vgs - h, vds, self.polarity, self.beta, self.vt, self.lam, self.n_vt)
        ) / (2 * h)
        gds = (
            ids_generic(vgs, vds + h, self.polarity, self.beta, self.vt, self.lam, self.n_vt)
            - ids_generic(vgs, vds - h, self.polarity, self.beta, self.vt, self.lam, self.n_vt)
        ) / (2 * h)
        return ids, gm, gds


@dataclass
class MnaSystem:
    """Assembled matrices and stamping helpers for one circuit."""

    circuit: SimCircuit
    n_nodes: int
    n_branches: int
    g_matrix: np.ndarray
    c_matrix: np.ndarray
    fets: FetBank

    @property
    def size(self) -> int:
        return self.n_nodes + self.n_branches

    def source_vector(self, t: float) -> np.ndarray:
        """Right-hand side at time ``t`` (source branch rows only)."""
        b = np.zeros(self.size)
        for k, source in enumerate(self.circuit.sources):
            b[self.n_nodes + k] = source.voltage_at(t)
        return b

    def stamp_nonlinear(
        self, x: np.ndarray, jacobian: np.ndarray, residual: np.ndarray
    ) -> None:
        """Add MOSFET currents and conductances to an in-progress (dense)
        Newton system (KCL convention: device current leaves the drain row
        and enters the source row)."""
        bank = self.fets
        if bank.count == 0:
            return
        ids, gm, gds = bank.evaluate(x[: self.n_nodes])
        residual[: self.n_nodes] += bank.residual_contribution(ids, self.n_nodes)
        np.add.at(
            jacobian,
            (bank.stamp_rows, bank.stamp_cols),
            bank.stamp_values(gm, gds),
        )


_GMIN = 1e-9  # siemens; SPICE-style minimum conductance to ground


def build_mna(circuit: SimCircuit) -> MnaSystem:
    """Assemble the constant matrices for a circuit.

    Every node gets a ``gmin`` leak to ground so nodes isolated by cut-off
    transistors (internal stack nodes at DC) keep a well-conditioned
    Jacobian -- standard SPICE practice.
    """
    n = circuit.node_count
    m = len(circuit.sources)
    size = n + m
    g_matrix = np.zeros((size, size))
    c_matrix = np.zeros((size, size))
    for i in range(n):
        g_matrix[i, i] += _GMIN

    for resistor in circuit.resistors:
        a, b = circuit.node(resistor.a), circuit.node(resistor.b)
        g = resistor.conductance
        if a >= 0:
            g_matrix[a, a] += g
        if b >= 0:
            g_matrix[b, b] += g
        if a >= 0 and b >= 0:
            g_matrix[a, b] -= g
            g_matrix[b, a] -= g

    for capacitor in circuit.capacitors:
        a, b = circuit.node(capacitor.a), circuit.node(capacitor.b)
        c = capacitor.capacitance
        if a >= 0:
            c_matrix[a, a] += c
        if b >= 0:
            c_matrix[b, b] += c
        if a >= 0 and b >= 0:
            c_matrix[a, b] -= c
            c_matrix[b, a] -= c

    for k, source in enumerate(circuit.sources):
        row = n + k
        a, b = circuit.node(source.a), circuit.node(source.b)
        if a >= 0:
            g_matrix[row, a] += 1.0
            g_matrix[a, row] += 1.0
        if b >= 0:
            g_matrix[row, b] -= 1.0
            g_matrix[b, row] -= 1.0

    return MnaSystem(
        circuit=circuit,
        n_nodes=n,
        n_branches=m,
        g_matrix=g_matrix,
        c_matrix=c_matrix,
        fets=FetBank(circuit),
    )
