"""Transient simulation engine.

Backward-Euler integration with full Newton iteration per time step.
Small circuits solve dense (numpy LAPACK); larger ones -- long critical
paths with many aggressor sources -- switch to sparse LU (scipy ``splu``)
with a precomputed device stamp pattern, keeping each Newton iteration
roughly linear in circuit size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.spice.mna import MnaSystem, build_mna
from repro.spice.netlist import SimCircuit
from repro.waveform.pwl import Waveform

# Above this MNA size the sparse backend wins over dense LAPACK.
_SPARSE_THRESHOLD = 150


class TransientError(RuntimeError):
    """Raised when the integration fails to converge."""


@dataclass
class TransientResult:
    """Node voltage traces of one transient run."""

    times: np.ndarray
    voltages: np.ndarray  # shape (steps, nodes)
    node_index: dict[str, int]
    newton_iterations: int = 0
    steps: int = 0

    def trace(self, node: str) -> np.ndarray:
        if node in ("0", "gnd", "GND"):
            return np.zeros_like(self.times)
        return self.voltages[:, self.node_index[node]]

    def waveform(self, node: str, direction: str | None = None) -> Waveform:
        """The node trace as a :class:`Waveform` (monotonised)."""
        values = self.trace(node).copy()
        if direction is None:
            direction = "rise" if values[-1] >= values[0] else "fall"
        if direction == "rise":
            np.maximum.accumulate(values, out=values)
        else:
            np.minimum.accumulate(values, out=values)
        return Waveform(self.times, values, direction)

    def crossing_time(self, node: str, threshold: float, direction: str) -> float:
        return self.waveform(node, direction).crossing_time(threshold)

    def to_csv(self, nodes: list[str] | None = None) -> str:
        """Dump traces as CSV (time plus one column per node)."""
        if nodes is None:
            nodes = list(self.node_index)
        header = "time," + ",".join(nodes)
        columns = [self.trace(n) for n in nodes]
        rows = [header]
        for i, t in enumerate(self.times):
            rows.append(f"{t:.6e}," + ",".join(f"{col[i]:.6e}" for col in columns))
        return "\n".join(rows) + "\n"

    def save_csv(self, path: str, nodes: list[str] | None = None) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_csv(nodes))


class TransientSimulator:
    """Integrates a :class:`SimCircuit` over time."""

    def __init__(
        self,
        circuit: SimCircuit,
        abstol: float = 1e-6,
        max_newton: int = 40,
        max_step_retries: int = 8,
        method: str = "be",
    ):
        """``method`` selects the integration scheme: ``"be"`` (backward
        Euler, L-stable, the default) or ``"trap"`` (trapezoidal,
        second-order accurate; preferred for tight waveform comparisons)."""
        if method not in ("be", "trap"):
            raise ValueError(f"unknown integration method {method!r}")
        self.circuit = circuit
        self.system: MnaSystem = build_mna(circuit)
        self.abstol = abstol
        self.max_newton = max_newton
        self.max_step_retries = max_step_retries
        self.method = method
        self.use_sparse = self.system.size > _SPARSE_THRESHOLD
        if self.use_sparse:
            self._g_sparse = sp.csr_matrix(self.system.g_matrix)
            self._c_sparse = sp.csr_matrix(self.system.c_matrix)

    # -- DC operating point ----------------------------------------------------

    def dc_operating_point(
        self, initial_voltages: dict[str, float] | None = None, t: float = 0.0
    ) -> np.ndarray:
        """Solve the DC equations at time ``t`` (capacitors open).

        ``initial_voltages`` seeds the Newton iteration; for logic
        circuits pass the known rail values of each node.
        """
        system = self.system
        x = np.zeros(system.size)
        if initial_voltages:
            for name, voltage in initial_voltages.items():
                index = self.circuit.node(name)
                if index >= 0:
                    x[index] = voltage
        b = system.source_vector(t)
        g_eff = self._g_sparse if self.use_sparse else system.g_matrix
        x, _iterations = self._newton_solve(x, b, g_eff)
        return x

    # -- transient ----------------------------------------------------------------

    def run(
        self,
        t_stop: float,
        dt: float,
        initial_voltages: dict[str, float] | None = None,
        t_start: float = 0.0,
        record: bool = True,
    ) -> TransientResult:
        """Integrate from ``t_start`` to ``t_stop`` with base step ``dt``."""
        if dt <= 0 or t_stop <= t_start:
            raise ValueError("need dt > 0 and t_stop > t_start")
        system = self.system
        x = self.dc_operating_point(initial_voltages, t=t_start)

        times = [t_start]
        states = [x[: system.n_nodes].copy()]
        newton_total = 0
        steps = 0

        t = t_start
        while t < t_stop - 1e-18:
            step = min(dt, t_stop - t)
            retries = 0
            while True:
                try:
                    x_new, iterations = self._step(x, t, t + step)
                    break
                except TransientError:
                    retries += 1
                    if retries > self.max_step_retries:
                        raise
                    step *= 0.25
            newton_total += iterations
            steps += 1
            t += step
            x = x_new
            if record:
                times.append(t)
                states.append(x[: system.n_nodes].copy())

        node_index = {name: i for i, name in enumerate(self.circuit.node_names)}
        return TransientResult(
            times=np.array(times),
            voltages=np.array(states),
            node_index=node_index,
            newton_iterations=newton_total,
            steps=steps,
        )

    # -- internals -------------------------------------------------------------------

    def _step(self, x_prev: np.ndarray, t_prev: float, t_next: float) -> tuple[np.ndarray, int]:
        system = self.system
        dt = t_next - t_prev
        g_matrix = self._g_sparse if self.use_sparse else system.g_matrix
        c_matrix = self._c_sparse if self.use_sparse else system.c_matrix
        c_over_dt = c_matrix / dt
        if self.method == "be":
            g_eff = g_matrix + c_over_dt
            b = system.source_vector(t_next) + c_over_dt @ x_prev
            alpha = 1.0
        else:
            # Trapezoidal on the differential (KCL node) rows only; the
            # source-constraint rows are algebraic and stay fully implicit
            # (averaging them rings on source discontinuities).
            n = system.n_nodes
            g_eff = 0.5 * g_matrix + c_over_dt + 0.5 * self._g_branch_rows()
            b = c_over_dt @ x_prev - 0.5 * (g_matrix @ x_prev)
            b_next = system.source_vector(t_next)
            b[n:] = b_next[n:]  # algebraic rows: exact constraint at t_next
            bank = system.fets
            if bank.count:
                ids, _, _ = bank.evaluate(x_prev[:n])
                b[:n] -= 0.5 * bank.residual_contribution(ids, n)
            alpha = 0.5
        return self._newton_solve(x_prev.copy(), b, g_eff, alpha)

    def _g_branch_rows(self):
        """The conductance matrix restricted to its algebraic (source
        branch) rows; cached."""
        cached = getattr(self, "_g_branch_cache", None)
        if cached is not None:
            return cached
        system = self.system
        n = system.n_nodes
        if self.use_sparse:
            mask = sp.lil_matrix((system.size, system.size))
            branch = self._g_sparse.tolil()[n:, :]
            mask[n:, :] = branch
            cached = sp.csr_matrix(mask)
        else:
            cached = np.zeros_like(system.g_matrix)
            cached[n:, :] = system.g_matrix[n:, :]
        self._g_branch_cache = cached
        return cached

    def _newton_solve(
        self, x: np.ndarray, b: np.ndarray, g_eff, alpha: float = 1.0
    ) -> tuple[np.ndarray, int]:
        system = self.system
        bank = system.fets
        n = system.n_nodes
        dx = np.zeros(system.size)
        for iteration in range(1, self.max_newton + 1):
            residual = g_eff @ x - b
            if bank.count:
                ids, gm, gds = bank.evaluate(x[:n])
                residual[:n] += alpha * bank.residual_contribution(ids, n)
                values = alpha * bank.stamp_values(gm, gds)
            try:
                if self.use_sparse:
                    jacobian = g_eff
                    if bank.count:
                        jacobian = g_eff + sp.coo_matrix(
                            (values, (bank.stamp_rows, bank.stamp_cols)),
                            shape=(system.size, system.size),
                        )
                    dx = spla.splu(jacobian.tocsc()).solve(-residual)
                else:
                    jacobian = g_eff.copy()
                    if bank.count:
                        np.add.at(
                            jacobian, (bank.stamp_rows, bank.stamp_cols), values
                        )
                    dx = np.linalg.solve(jacobian, -residual)
            except (np.linalg.LinAlgError, RuntimeError) as exc:
                raise TransientError(f"singular Jacobian: {exc}") from exc
            # Damping: limit voltage updates per iteration.
            limit = 2.0
            peak = np.max(np.abs(dx[:n])) if n else 0.0
            if peak > limit:
                dx *= limit / peak
            x = x + dx
            if peak_norm(dx, n) < self.abstol:
                return x, iteration
        raise TransientError(
            f"Newton failed to converge in {self.max_newton} iterations "
            f"(|dx|={peak_norm(dx, n):.3e})"
        )


def peak_norm(dx: np.ndarray, n_nodes: int) -> float:
    """Convergence norm: max voltage update (branch currents excluded)."""
    if n_nodes == 0:
        return float(np.max(np.abs(dx))) if dx.size else 0.0
    return float(np.max(np.abs(dx[:n_nodes])))
