"""MNA transient simulator -- the in-repo stand-in for the paper's SPICE
validation runs."""

from repro.spice.elements import Capacitor, MosfetElement, PwlSource, Resistor
from repro.spice.measure import (
    DelayMeasurement,
    crossing,
    delay_between,
    glitch_amplitude,
    last_crossing,
    slew,
)
from repro.spice.mna import FetBank, MnaSystem, build_mna
from repro.spice.netlist import SimCircuit
from repro.spice.transient import TransientError, TransientResult, TransientSimulator
from repro.spice.writer import save_spice, write_spice

__all__ = [
    "Capacitor",
    "DelayMeasurement",
    "FetBank",
    "MnaSystem",
    "MosfetElement",
    "PwlSource",
    "Resistor",
    "SimCircuit",
    "TransientError",
    "TransientResult",
    "TransientSimulator",
    "build_mna",
    "crossing",
    "delay_between",
    "glitch_amplitude",
    "last_crossing",
    "save_spice",
    "slew",
    "write_spice",
]
