"""Circuit elements of the transient simulator.

The validation simulator needs exactly four element kinds: resistors,
(possibly floating) capacitors, piecewise-linear voltage sources and
MOSFETs.  Elements know how to stamp themselves into the MNA matrices;
node indices are assigned by :class:`repro.spice.netlist.SimCircuit`.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.devices.mosfet import Mosfet


@dataclass(frozen=True)
class Resistor:
    """Linear resistor between nodes ``a`` and ``b`` (ohms)."""

    a: str
    b: str
    resistance: float

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise ValueError(f"resistance must be positive, got {self.resistance}")

    @property
    def conductance(self) -> float:
        return 1.0 / self.resistance


@dataclass(frozen=True)
class Capacitor:
    """Capacitor between nodes ``a`` and ``b`` (farads).

    Ground one terminal (``b="0"``) for a load capacitance; leave both
    floating for a coupling capacitance.
    """

    a: str
    b: str
    capacitance: float

    def __post_init__(self) -> None:
        if self.capacitance < 0:
            raise ValueError(f"capacitance must be non-negative, got {self.capacitance}")


class PwlSource:
    """Piecewise-linear voltage source from node ``b`` (-) to ``a`` (+).

    ``points`` is a list of (time, voltage) pairs with non-decreasing
    times; the voltage holds constant before the first and after the last
    point.  This is the element the paper's validation methodology adjusts
    iteratively ("piecewise linear sources had to be iteratively adjusted
    to obtain worst-case path delays at every coupling capacitance").
    """

    def __init__(self, a: str, b: str, points: list[tuple[float, float]]):
        if not points:
            raise ValueError("PWL source needs at least one point")
        times = [t for t, _ in points]
        if any(t1 < t0 for t0, t1 in zip(times, times[1:])):
            raise ValueError("PWL times must be non-decreasing")
        self.a = a
        self.b = b
        self.points = list(points)
        self._times = times
        self._volts = [v for _, v in points]

    def voltage_at(self, t: float) -> float:
        times, volts = self._times, self._volts
        if t <= times[0]:
            return volts[0]
        if t >= times[-1]:
            return volts[-1]
        i = bisect_right(times, t)
        t0, t1 = times[i - 1], times[i]
        v0, v1 = volts[i - 1], volts[i]
        if t1 == t0:
            return v1
        return v0 + (v1 - v0) * (t - t0) / (t1 - t0)

    def breakpoints(self) -> list[float]:
        return list(self._times)

    @staticmethod
    def step(a: str, v0: float, v1: float, t_step: float, ramp: float) -> "PwlSource":
        """Convenience: a single ramp from ``v0`` to ``v1`` starting at
        ``t_step`` with the given ramp time, referenced to ground."""
        if ramp <= 0:
            ramp = 1e-15
        return PwlSource(a, "0", [(t_step, v0), (t_step + ramp, v1)])

    @staticmethod
    def dc(a: str, voltage: float) -> "PwlSource":
        return PwlSource(a, "0", [(0.0, voltage)])


@dataclass(frozen=True)
class MosfetElement:
    """A MOSFET with named drain/gate/source terminals.

    Bulk is implicitly tied to the rail (the device model has no body
    effect).  The ``device`` provides the analytic DC current and its
    derivatives for Newton stamping.
    """

    name: str
    drain: str
    gate: str
    source: str
    device: Mosfet
