"""Measurements on simulation traces: delays, slews, glitch amplitudes."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.spice.transient import TransientResult
from repro.waveform.pwl import FALLING, RISING


@dataclass(frozen=True)
class DelayMeasurement:
    """A 50 %-to-50 % delay between two nodes."""

    from_node: str
    to_node: str
    delay: float
    t_from: float
    t_to: float


def crossing(
    result: TransientResult, node: str, threshold: float, direction: str
) -> float:
    """First crossing of ``threshold`` in ``direction`` on a node trace
    (raw trace, not monotonised -- glitches count)."""
    times = result.times
    values = result.trace(node)
    if direction == RISING:
        hits = np.nonzero((values[:-1] < threshold) & (values[1:] >= threshold))[0]
    else:
        hits = np.nonzero((values[:-1] > threshold) & (values[1:] <= threshold))[0]
    if hits.size == 0:
        raise ValueError(
            f"node {node!r} never crosses {threshold:.3f} V {direction}"
        )
    i = int(hits[0])
    v0, v1 = values[i], values[i + 1]
    t0, t1 = times[i], times[i + 1]
    if v1 == v0:
        return float(t1)
    return float(t0 + (threshold - v0) * (t1 - t0) / (v1 - v0))


def last_crossing(
    result: TransientResult, node: str, threshold: float, direction: str
) -> float:
    """Last crossing of ``threshold`` in ``direction`` (for waveforms with
    glitches, the final passage)."""
    times = result.times
    values = result.trace(node)
    if direction == RISING:
        hits = np.nonzero((values[:-1] < threshold) & (values[1:] >= threshold))[0]
    else:
        hits = np.nonzero((values[:-1] > threshold) & (values[1:] <= threshold))[0]
    if hits.size == 0:
        raise ValueError(f"node {node!r} never crosses {threshold:.3f} V {direction}")
    i = int(hits[-1])
    v0, v1 = values[i], values[i + 1]
    t0, t1 = times[i], times[i + 1]
    if v1 == v0:
        return float(t1)
    return float(t0 + (threshold - v0) * (t1 - t0) / (v1 - v0))


def delay_between(
    result: TransientResult,
    from_node: str,
    from_direction: str,
    to_node: str,
    to_direction: str,
    threshold: float,
) -> DelayMeasurement:
    """50 %-style delay between two nodes at a common threshold."""
    t_from = crossing(result, from_node, threshold, from_direction)
    t_to = last_crossing(result, to_node, threshold, to_direction)
    return DelayMeasurement(
        from_node=from_node,
        to_node=to_node,
        delay=t_to - t_from,
        t_from=t_from,
        t_to=t_to,
    )


def glitch_amplitude(result: TransientResult, node: str, quiet_value: float) -> float:
    """Peak excursion of a nominally quiet node from its rest value."""
    return float(np.max(np.abs(result.trace(node) - quiet_value)))


def slew(result: TransientResult, node: str, direction: str, vdd: float) -> float:
    """10-90 % transition time extrapolated to the full swing."""
    lo, hi = 0.1 * vdd, 0.9 * vdd
    if direction == RISING:
        t_lo = crossing(result, node, lo, RISING)
        t_hi = crossing(result, node, hi, RISING)
    else:
        t_hi = crossing(result, node, hi, FALLING)
        t_lo = crossing(result, node, lo, FALLING)
        t_lo, t_hi = t_hi, t_lo
    return abs(t_hi - t_lo) / 0.8
