"""Smooth analytic MOSFET DC model.

The paper models "the DC behavior of the transistors ... by tables"
(Section 3).  The tables have to be filled from *some* continuous device
description; we use a single-piece EKV-flavoured square-law model that is

* continuous and continuously differentiable everywhere (no kink at the
  threshold or at saturation), which keeps the Newton iteration of the
  waveform engine well behaved, and
* monotone in ``|V_GS|`` and in ``|V_DS|``, which the table code and the
  property tests rely on.

The model blends subthreshold conduction and strong inversion through a
softplus effective overdrive and blends the linear/saturation regions with a
smooth-minimum of ``V_DS`` against ``V_dsat``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.devices.params import ProcessParams, default_process

# Sharpness of the smooth linear/saturation blend.  Larger values track the
# ideal square law more closely at the cost of a stiffer derivative.
_SAT_SHARPNESS = 4.0


def ids_generic(
    vgs,
    vds,
    polarity,
    beta,
    vt,
    lam,
    n_vt,
):
    """Vectorised drain current of the EKV-flavoured square-law model.

    All parameters broadcast; ``polarity`` is +1 (NMOS) / -1 (PMOS),
    ``beta = kp * W/L``.  Both :class:`Mosfet` (single device) and the
    simulator's device banks evaluate through this one function, so the
    timing engine and the validation simulator share identical device
    physics.
    """
    sign = np.asarray(polarity, dtype=float)
    vgs_n = sign * np.asarray(vgs, dtype=float)
    vds_n = sign * np.asarray(vds, dtype=float)

    # Channel symmetry: swap drain/source for reverse V_DS.
    reverse = vds_n < 0.0
    vgs_eff = np.where(reverse, vgs_n - vds_n, vgs_n)
    vds_eff = np.abs(vds_n)

    x = (vgs_eff - vt) / n_vt
    vov = n_vt * np.logaddexp(0.0, x)
    ratio = np.divide(vds_eff, vov, out=np.zeros_like(vds_eff), where=vov > 0)
    blend = ratio / np.power(1.0 + np.power(ratio, _SAT_SHARPNESS), 1.0 / _SAT_SHARPNESS)
    vds_b = vov * blend
    ids = beta * (vov - 0.5 * vds_b) * vds_b
    ids = ids * (1.0 + lam * vds_eff)
    ids = np.where(reverse, -ids, ids)
    return sign * ids


@dataclass(frozen=True)
class MosfetParams:
    """Geometry and polarity of one transistor.

    ``polarity`` is ``+1`` for NMOS and ``-1`` for PMOS.  ``width`` and
    ``length`` are drawn dimensions in metres.
    """

    polarity: int
    width: float
    length: float

    def __post_init__(self) -> None:
        if self.polarity not in (1, -1):
            raise ValueError(f"polarity must be +1 or -1, got {self.polarity}")
        if self.width <= 0 or self.length <= 0:
            raise ValueError("transistor dimensions must be positive")

    @property
    def wl(self) -> float:
        """Aspect ratio W/L."""
        return self.width / self.length


class Mosfet:
    """Analytic DC model of a single MOSFET in a given process.

    The drain current convention is *drain to source*, positive for an NMOS
    in normal operation (``V_DS >= 0``) and negative for a PMOS (current
    flows source to drain when ``V_DS <= 0``).  Voltages are terminal
    voltages relative to the source.
    """

    def __init__(self, params: MosfetParams, process: ProcessParams | None = None):
        self.params = params
        self.process = process if process is not None else default_process()
        if params.polarity > 0:
            self._vt = self.process.vtn
            self._kp = self.process.kp_n
            self._lam = self.process.lambda_n
        else:
            self._vt = abs(self.process.vtp)
            self._kp = self.process.kp_p
            self._lam = self.process.lambda_p
        self._n_vt = self.process.n_sub * self.process.thermal_voltage

    # -- scalar API --------------------------------------------------------

    def ids(self, vgs: float, vds: float) -> float:
        """Drain-source current at the given terminal voltages."""
        return float(self.ids_array(np.asarray(vgs, float), np.asarray(vds, float)))

    def gds(self, vgs: float, vds: float, dv: float = 1e-4) -> float:
        """Output conductance dI/dV_DS by central difference."""
        hi = self.ids(vgs, vds + dv)
        lo = self.ids(vgs, vds - dv)
        return (hi - lo) / (2.0 * dv)

    def gm(self, vgs: float, vds: float, dv: float = 1e-4) -> float:
        """Transconductance dI/dV_GS by central difference."""
        hi = self.ids(vgs + dv, vds)
        lo = self.ids(vgs - dv, vds)
        return (hi - lo) / (2.0 * dv)

    # -- vectorised core ---------------------------------------------------

    def ids_array(self, vgs: np.ndarray, vds: np.ndarray) -> np.ndarray:
        """Vectorised drain current.  Handles both polarities and both
        signs of ``V_DS`` (the channel is symmetric: drain and source swap
        roles when the drain falls below the source)."""
        return ids_generic(
            vgs,
            vds,
            polarity=float(self.params.polarity),
            beta=self._kp * self.params.wl,
            vt=self._vt,
            lam=self._lam,
            n_vt=self._n_vt,
        )

    # -- convenience -------------------------------------------------------

    def saturation_current(self) -> float:
        """On-current at ``V_GS = V_DS = V_DD`` (drive strength figure)."""
        v = self.process.vdd * self.params.polarity
        return abs(self.ids(v, v))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "nmos" if self.params.polarity > 0 else "pmos"
        return (
            f"Mosfet({kind}, W={self.params.width * 1e6:.2f}u, "
            f"L={self.params.length * 1e6:.2f}u)"
        )


def nmos(width: float, length: float | None = None, process: ProcessParams | None = None) -> Mosfet:
    """Build an NMOS device of the given drawn width (metres)."""
    process = process if process is not None else default_process()
    if length is None:
        length = process.l_min
    return Mosfet(MosfetParams(polarity=1, width=width, length=length), process)


def pmos(width: float, length: float | None = None, process: ProcessParams | None = None) -> Mosfet:
    """Build a PMOS device of the given drawn width (metres)."""
    process = process if process is not None else default_process()
    if length is None:
        length = process.l_min
    return Mosfet(MosfetParams(polarity=-1, width=width, length=length), process)


def series_equivalent_width(widths: list[float]) -> float:
    """Width of the single transistor equivalent to a series stack.

    Series transistors of widths ``w_i`` (same length) behave, to first
    order, like one device with ``W/L`` equal to the reciprocal sum --
    the reduction the stage solver uses to collapse pull-up/pull-down
    networks onto a single equivalent device.
    """
    if not widths:
        raise ValueError("series stack must contain at least one device")
    if any(w <= 0 for w in widths):
        raise ValueError("series stack widths must be positive")
    return 1.0 / sum(1.0 / w for w in widths)


def parallel_equivalent_width(widths: list[float]) -> float:
    """Width of the single transistor equivalent to parallel devices."""
    if not widths:
        raise ValueError("parallel group must contain at least one device")
    if any(w <= 0 for w in widths):
        raise ValueError("parallel widths must be positive")
    return math.fsum(widths)
