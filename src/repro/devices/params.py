"""Process parameters for the 0.5 um, two-metal technology of the paper.

The paper evaluates ISCAS89 circuits "routed in a 0.5 um process technology
with two metal layers" at a transistor threshold voltage of 0.6 V, and uses a
*model* threshold of 0.2 V for the coupling model (Section 2).  The constants
below describe a representative 0.5 um CMOS process of that era (3.3 V
supply).  Absolute values only set the time scale; the reproduction targets
the relative behaviour of the five analysis modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ProcessParams:
    """Electrical constants of the target process.

    Attributes
    ----------
    vdd:
        Supply voltage in volts.
    vtn, vtp:
        NMOS / PMOS threshold voltages in volts (``vtp`` is negative).
    v_th_model:
        The coupling-model threshold of Section 2 of the paper: the victim
        waveform restarts from this voltage after the aggressor drop.  The
        paper chooses 0.2 V against a 0.6 V transistor threshold so the
        restart value itself has no impact on delay.
    kp_n, kp_p:
        Process transconductance ``mu * Cox`` in A/V^2 for NMOS and PMOS.
    lambda_n, lambda_p:
        Channel-length modulation in 1/V.
    n_sub:
        Subthreshold slope factor (dimensionless).
    temperature:
        Junction temperature in kelvin (sets the thermal voltage).
    l_min:
        Minimum drawn channel length in metres (0.5 um).
    cox:
        Gate-oxide capacitance per area in F/m^2.
    c_junction:
        Drain/source junction capacitance per transistor width in F/m.
    """

    vdd: float = 3.3
    vtn: float = 0.6
    vtp: float = -0.6
    v_th_model: float = 0.2
    kp_n: float = 120e-6
    kp_p: float = 40e-6
    lambda_n: float = 0.06
    lambda_p: float = 0.08
    n_sub: float = 1.5
    temperature: float = 300.0
    l_min: float = 0.5e-6
    cox: float = 2.7e-3
    c_junction: float = 1.0e-9

    @property
    def thermal_voltage(self) -> float:
        """kT/q in volts."""
        boltzmann = 1.380649e-23
        charge = 1.602176634e-19
        return boltzmann * self.temperature / charge

    @property
    def v_half(self) -> float:
        """The 50 % threshold used for delay measurement."""
        return 0.5 * self.vdd

    def slew_thresholds(self) -> tuple[float, float]:
        """Low/high voltages between which transition time (slew) is
        measured.  We use the conventional 10 %-90 % window."""
        return 0.1 * self.vdd, 0.9 * self.vdd

    def gate_cap(self, width: float, length: float | None = None) -> float:
        """Gate capacitance of a transistor of the given drawn ``width``."""
        if length is None:
            length = self.l_min
        return self.cox * width * length


_DEFAULT = ProcessParams()


def default_process() -> ProcessParams:
    """Return the shared default 0.5 um process description."""
    return _DEFAULT


@dataclass(frozen=True)
class SizingRules:
    """Default transistor sizing used when building library cells.

    Widths are expressed in metres.  ``beta`` is the PMOS/NMOS width ratio
    compensating for the mobility difference; series stacks are widened by
    ``stack_factor`` per stacked device, the standard sizing rule for
    roughly equal rise/fall drive.
    """

    wn_unit: float = 2.0e-6
    beta: float = 2.0
    stack_factor: float = 1.0
    drive_scale: dict = field(default_factory=lambda: {"X1": 1.0, "X2": 2.0, "X4": 4.0})

    def nmos_width(self, stack_depth: int = 1, drive: str = "X1") -> float:
        scale = self.drive_scale[drive]
        return self.wn_unit * scale * (1.0 + self.stack_factor * (stack_depth - 1))

    def pmos_width(self, stack_depth: int = 1, drive: str = "X1") -> float:
        scale = self.drive_scale[drive]
        return self.beta * self.wn_unit * scale * (1.0 + self.stack_factor * (stack_depth - 1))


_DEFAULT_SIZING = SizingRules()


def default_sizing() -> SizingRules:
    """Return the shared default sizing rules."""
    return _DEFAULT_SIZING
