"""Damped scalar Newton iteration.

The waveform engine solves one implicit (backward-Euler) equation per time
step.  The paper uses "the classical Newton approximation instead of the
successive chord method proposed in [TETA]" and reports no convergence
problems thanks to finely discretised tables.  We add light damping and a
bisection fallback so the solver is robust even on coarse tables, without
changing behaviour on well-conditioned problems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


class NewtonError(RuntimeError):
    """Raised when the iteration fails to converge."""


@dataclass
class NewtonResult:
    """Outcome of a Newton solve."""

    root: float
    iterations: int
    residual: float
    used_bisection: bool = False


def solve_newton(
    func: Callable[[float], tuple[float, float]],
    x0: float,
    tol: float = 1e-9,
    max_iter: int = 50,
    lo: float | None = None,
    hi: float | None = None,
) -> NewtonResult:
    """Solve ``f(x) = 0`` for scalar ``x``.

    Parameters
    ----------
    func:
        Returns ``(f(x), f'(x))``.
    x0:
        Initial guess.
    tol:
        Convergence tolerance on ``|x_new - x|``.
    max_iter:
        Iteration budget before falling back to bisection (which requires
        ``lo``/``hi`` to bracket a root).
    lo, hi:
        Optional clamping interval; iterates are kept inside it.
    """
    x = x0
    f, df = func(x)
    for iteration in range(1, max_iter + 1):
        if df == 0.0:
            break
        step = f / df
        # Damping: never move more than half the bracket in one step.
        if lo is not None and hi is not None:
            max_step = 0.5 * (hi - lo)
            if step > max_step:
                step = max_step
            elif step < -max_step:
                step = -max_step
        x_new = x - step
        if lo is not None and x_new < lo:
            x_new = lo
        if hi is not None and x_new > hi:
            x_new = hi
        if abs(x_new - x) <= tol:
            f_new, _ = func(x_new)
            return NewtonResult(root=x_new, iterations=iteration, residual=abs(f_new))
        x = x_new
        f, df = func(x)

    if lo is None or hi is None:
        raise NewtonError(
            f"Newton failed to converge after {max_iter} iterations "
            f"(last x={x!r}, f={f!r})"
        )
    return _bisect(func, lo, hi, tol, max_iter)


def _bisect(
    func: Callable[[float], tuple[float, float]],
    lo: float,
    hi: float,
    tol: float,
    start_iter: int,
) -> NewtonResult:
    f_lo, _ = func(lo)
    f_hi, _ = func(hi)
    if f_lo == 0.0:
        return NewtonResult(root=lo, iterations=start_iter, residual=0.0, used_bisection=True)
    if f_hi == 0.0:
        return NewtonResult(root=hi, iterations=start_iter, residual=0.0, used_bisection=True)
    if f_lo * f_hi > 0.0:
        raise NewtonError(
            f"bisection fallback has no bracket: f({lo})={f_lo}, f({hi})={f_hi}"
        )
    iterations = start_iter
    while hi - lo > tol:
        iterations += 1
        mid = 0.5 * (lo + hi)
        f_mid, _ = func(mid)
        if f_mid == 0.0:
            return NewtonResult(root=mid, iterations=iterations, residual=0.0, used_bisection=True)
        if f_lo * f_mid < 0.0:
            hi = mid
        else:
            lo, f_lo = mid, f_mid
        if iterations > 200:
            break
    root = 0.5 * (lo + hi)
    f_root, _ = func(root)
    return NewtonResult(root=root, iterations=iterations, residual=abs(f_root), used_bisection=True)
