"""Damped scalar Newton iteration.

The waveform engine solves one implicit (backward-Euler) equation per time
step.  The paper uses "the classical Newton approximation instead of the
successive chord method proposed in [TETA]" and reports no convergence
problems thanks to finely discretised tables.  We add light damping and a
bisection fallback so the solver is robust even on coarse tables, without
changing behaviour on well-conditioned problems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import SolverError


class NewtonError(SolverError):
    """Raised when the iteration fails to converge."""


#: Bound on the timing noise a converged solve may carry.
#:
#: The stage integrators call :func:`solve_newton` with a voltage-update
#: tolerance of 1e-7 V per backward-Euler step; interpolating the
#: half-V_DD crossing through points perturbed by that much moves the
#: crossing time by well under 0.1 ps for any physical slew in the
#: libraries here.  Consumers that compare two *independently converged*
#: solves (the screening tier's monotone-dominance brackets) must pad
#: their bounds by this amount: monotonicity of the underlying circuit
#: response is exact, but the discrete solver can violate it by up to
#: this noise floor.
MONOTONE_NOISE = 1e-13


@dataclass
class NewtonResult:
    """Outcome of a Newton solve."""

    root: float
    iterations: int
    residual: float
    used_bisection: bool = False


def solve_newton(
    func: Callable[[float], tuple[float, float]],
    x0: float,
    tol: float = 1e-9,
    max_iter: int = 50,
    lo: float | None = None,
    hi: float | None = None,
) -> NewtonResult:
    """Solve ``f(x) = 0`` for scalar ``x``.

    Parameters
    ----------
    func:
        Returns ``(f(x), f'(x))``.
    x0:
        Initial guess.
    tol:
        Convergence tolerance on ``|x_new - x|``.
    max_iter:
        Iteration budget before falling back to bisection (which requires
        ``lo``/``hi`` to bracket a root).
    lo, hi:
        Optional clamping interval; iterates are kept inside it.
    """
    x = x0
    f, df = func(x)
    for iteration in range(1, max_iter + 1):
        if df == 0.0:
            break
        step = f / df
        # Damping: never move more than half the bracket in one step.
        if lo is not None and hi is not None:
            max_step = 0.5 * (hi - lo)
            if step > max_step:
                step = max_step
            elif step < -max_step:
                step = -max_step
        x_new = x - step
        if lo is not None and x_new < lo:
            x_new = lo
        if hi is not None and x_new > hi:
            x_new = hi
        if abs(x_new - x) <= tol:
            f_new, _ = func(x_new)
            return NewtonResult(root=x_new, iterations=iteration, residual=abs(f_new))
        x = x_new
        f, df = func(x)

    if lo is None or hi is None:
        raise NewtonError(
            f"Newton failed to converge after {max_iter} iterations "
            f"(last x={x!r}, f={f!r})"
        )
    return _bisect(func, lo, hi, tol, max_iter)


@dataclass
class BatchNewtonResult:
    """Outcome of a batched Newton solve (one entry per element)."""

    roots: np.ndarray
    iterations: np.ndarray
    used_bisection: np.ndarray

    @property
    def total_iterations(self) -> int:
        return int(self.iterations.sum())

    @property
    def bisection_count(self) -> int:
        """Elements that fell back to bisection (convergence failures of
        the Newton update, fed to the ``newton.bisection_fallbacks``
        metric by the stage solvers)."""
        return int(self.used_bisection.sum())


def solve_newton_many(
    func: Callable[[np.ndarray], tuple[np.ndarray, np.ndarray]],
    x0: np.ndarray,
    tol: float = 1e-9,
    max_iter: int = 50,
    lo: float | None = None,
    hi: float | None = None,
) -> BatchNewtonResult:
    """Solve ``f_i(x_i) = 0`` for a batch of independent scalar problems.

    The vectorized generalization of :func:`solve_newton`: one damped
    Newton update per iteration over the whole batch, per-element
    convergence masks (converged elements freeze), and a per-element
    bisection fallback for elements that hit a zero derivative or exhaust
    the iteration budget.  The update arithmetic matches the scalar
    solver step for step, so a batch of size one reproduces
    :func:`solve_newton` bit for bit on well-conditioned problems.

    ``func`` evaluates all elements at once and returns ``(f, df)``
    arrays; ``lo``/``hi`` are shared scalar bounds.
    """
    x = np.asarray(x0, dtype=float).copy()
    n = x.size
    roots = x.copy()
    iterations = np.zeros(n, dtype=int)
    converged = np.zeros(n, dtype=bool)
    needs_fallback = np.zeros(n, dtype=bool)
    bounded = lo is not None and hi is not None
    max_step = 0.5 * (hi - lo) if bounded else None

    f, df = func(x)
    # Scratch buffers reused across iterations: lanes outside ``active``
    # may hold stale values, but every read below is masked by ``active``
    # (or a subset of it), so stale lanes never reach a result.
    step = np.zeros_like(x)
    x_new = np.empty_like(x)
    active = np.empty(n, dtype=bool)
    flat = np.empty(n, dtype=bool)
    conv_now = np.empty(n, dtype=bool)
    advance = np.empty(n, dtype=bool)
    for iteration in range(1, max_iter + 1):
        np.logical_or(converged, needs_fallback, out=active)
        np.logical_not(active, out=active)
        if not active.any():
            break
        np.equal(df, 0.0, out=flat)
        flat &= active
        if flat.any():
            needs_fallback |= flat
            active &= ~flat
            if not active.any():
                break
        np.divide(f, df, out=step, where=active)
        if max_step is not None:
            np.maximum(step, -max_step, out=step)
            np.minimum(step, max_step, out=step)
        np.subtract(x, step, out=x_new)
        if lo is not None:
            np.maximum(x_new, lo, out=x_new)
        if hi is not None:
            np.minimum(x_new, hi, out=x_new)
        np.subtract(x_new, x, out=step)
        np.abs(step, out=step)
        np.less_equal(step, tol, out=conv_now)
        conv_now &= active
        if conv_now.any():
            roots[conv_now] = x_new[conv_now]
            iterations[conv_now] = iteration
            converged |= conv_now
        np.logical_not(conv_now, out=advance)
        advance &= active
        if not advance.any():
            continue
        np.copyto(x, x_new, where=advance)
        f, df = func(x)

    pending = ~converged
    if pending.any():
        if not bounded:
            idx = int(np.nonzero(pending)[0][0])
            raise NewtonError(
                f"batched Newton failed to converge after {max_iter} iterations "
                f"(element {idx}, last x={x[idx]!r})"
            )
        _bisect_many(func, x, roots, iterations, pending, lo, hi, tol, max_iter)
    return BatchNewtonResult(
        roots=roots, iterations=iterations, used_bisection=pending
    )


def _bisect_many(
    func: Callable[[np.ndarray], tuple[np.ndarray, np.ndarray]],
    x: np.ndarray,
    roots: np.ndarray,
    iterations: np.ndarray,
    pending: np.ndarray,
    lo: float,
    hi: float,
    tol: float,
    start_iter: int,
) -> None:
    """Vectorized bisection over the ``pending`` elements (in place)."""
    idx = np.nonzero(pending)[0]
    lo_v = np.full(idx.size, float(lo))
    hi_v = np.full(idx.size, float(hi))
    probe = x.copy()
    probe[idx] = lo_v
    f_lo = func(probe)[0][idx]
    probe[idx] = hi_v
    f_hi = func(probe)[0][idx]
    bad = f_lo * f_hi > 0.0
    if bad.any():
        i = int(idx[np.nonzero(bad)[0][0]])
        raise NewtonError(
            f"bisection fallback has no bracket for element {i}: "
            f"f({lo})={f_lo[np.nonzero(bad)[0][0]]}, "
            f"f({hi})={f_hi[np.nonzero(bad)[0][0]]}"
        )
    count = start_iter
    while (hi_v - lo_v > tol).any() and count <= start_iter + 200:
        count += 1
        mid = 0.5 * (lo_v + hi_v)
        probe[idx] = mid
        f_mid = func(probe)[0][idx]
        go_lo = f_lo * f_mid < 0.0
        hi_v = np.where(go_lo, mid, hi_v)
        keep_hi = ~go_lo
        lo_v = np.where(keep_hi, mid, lo_v)
        f_lo = np.where(keep_hi, f_mid, f_lo)
    roots[idx] = 0.5 * (lo_v + hi_v)
    iterations[idx] = count


def _bisect(
    func: Callable[[float], tuple[float, float]],
    lo: float,
    hi: float,
    tol: float,
    start_iter: int,
) -> NewtonResult:
    f_lo, _ = func(lo)
    f_hi, _ = func(hi)
    if f_lo == 0.0:
        return NewtonResult(root=lo, iterations=start_iter, residual=0.0, used_bisection=True)
    if f_hi == 0.0:
        return NewtonResult(root=hi, iterations=start_iter, residual=0.0, used_bisection=True)
    if f_lo * f_hi > 0.0:
        raise NewtonError(
            f"bisection fallback has no bracket: f({lo})={f_lo}, f({hi})={f_hi}"
        )
    iterations = start_iter
    while hi - lo > tol:
        iterations += 1
        mid = 0.5 * (lo + hi)
        f_mid, _ = func(mid)
        if f_mid == 0.0:
            return NewtonResult(root=mid, iterations=iterations, residual=0.0, used_bisection=True)
        if f_lo * f_mid < 0.0:
            hi = mid
        else:
            lo, f_lo = mid, f_mid
        if iterations > 200:
            break
    root = 0.5 * (lo + hi)
    f_root, _ = func(root)
    return NewtonResult(root=root, iterations=iterations, residual=abs(f_root), used_bisection=True)
