"""Process corners.

Classic three-corner methodology for the 0.5 um process: ``typical``,
``fast`` (strong devices, high supply, cold) and ``slow`` (weak devices,
low supply, hot).  Worst-case setup timing is signed off at the slow
corner; hold at the fast corner; the crosstalk analysis runs unchanged on
any corner's :class:`~repro.devices.params.ProcessParams`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.devices.params import ProcessParams, default_process


@dataclass(frozen=True)
class Corner:
    """A named process/voltage/temperature point."""

    name: str
    process: ProcessParams

    def __str__(self) -> str:
        p = self.process
        return (
            f"{self.name}: VDD={p.vdd:.2f} V, Vtn={p.vtn:.2f} V, "
            f"kp_n={p.kp_n * 1e6:.0f} uA/V2, T={p.temperature:.0f} K"
        )


def make_corner(
    name: str,
    base: ProcessParams | None = None,
    drive_scale: float = 1.0,
    vdd_scale: float = 1.0,
    vt_shift: float = 0.0,
    temperature: float | None = None,
) -> Corner:
    """Derive a corner from a base process.

    ``drive_scale`` multiplies both transconductances; ``vt_shift`` adds
    to the NMOS threshold and subtracts from the PMOS one (device-strength
    skew); ``vdd_scale`` scales the supply (the model threshold scales
    with it so the coupling model keeps its relative position).
    """
    base = base if base is not None else default_process()
    return Corner(
        name=name,
        process=dataclasses.replace(
            base,
            vdd=base.vdd * vdd_scale,
            v_th_model=base.v_th_model * vdd_scale,
            vtn=base.vtn + vt_shift,
            vtp=base.vtp - vt_shift,
            kp_n=base.kp_n * drive_scale,
            kp_p=base.kp_p * drive_scale,
            temperature=temperature if temperature is not None else base.temperature,
        ),
    )


def standard_corners(base: ProcessParams | None = None) -> dict[str, Corner]:
    """The conventional typical/fast/slow triple."""
    base = base if base is not None else default_process()
    return {
        "typical": Corner("typical", base),
        "fast": make_corner(
            "fast", base, drive_scale=1.25, vdd_scale=1.10, vt_shift=-0.05,
            temperature=233.0,
        ),
        "slow": make_corner(
            "slow", base, drive_scale=0.80, vdd_scale=0.90, vt_shift=+0.05,
            temperature=398.0,
        ),
    }
