"""Tabulated DC device models.

Following TETA and the paper (Section 3), the DC behaviour of transistors is
stored in tables and interpolated during timing analysis.  The paper notes
that "due to the fine discretization of the tables we do not get convergence
problems" with classical Newton iteration -- so the tables here default to a
fine grid and expose both the interpolated current and its partial
derivative with respect to the output voltage, which is exactly what the
Newton loop of the waveform engine needs.

Two table flavours are provided:

* :class:`DeviceTable` -- ``I_D(V_GS, V_DS)`` for one transistor.
* :class:`StageTable` -- the *net* output-node current
  ``I(V_in, V_out) = I_pullup - I_pulldown`` of a collapsed CMOS stage.
  Collapsing the stage into one table halves the interpolation work per
  Newton iteration, the dominant cost of the whole analysis.
"""

from __future__ import annotations

import numpy as np

from repro.devices.mosfet import Mosfet
from repro.devices.params import ProcessParams, default_process
from repro.errors import InputError


def _cell_locate(f, n: int):
    """Clamped cell index and in-cell fraction for a fractional grid
    coordinate ``f`` on an axis of ``n`` points.

    This is the *single* place the edge handling of every lookup flavour
    (scalar, scalar-with-gradient, vectorized, banked) is defined, so the
    scalar reference path and the batched path cannot drift apart: the
    cell index is the truncation of ``f`` clamped to ``[0, n - 2]`` and
    the fraction is ``f - index`` clamped to ``[0, 1]``.

    Accepts a python float (returns ``(int, float)``) or a numpy array
    (returns ``(int array, float array)``); the scalar branch stays pure
    python because it sits inside the per-time-step Newton loop of the
    reference solver.
    """
    if isinstance(f, np.ndarray):
        # Explicit maximum/minimum rather than np.clip: same arithmetic
        # (clip is minimum(maximum(f, lo), hi)), none of the wrapper
        # overhead -- this sits under every batched Newton iteration.
        i = f.astype(int)
        np.maximum(i, 0, out=i)
        np.minimum(i, n - 2, out=i)
        t = f - i
        np.maximum(t, 0.0, out=t)
        np.minimum(t, 1.0, out=t)
        return i, t
    i = int(f)
    if i < 0:
        i = 0
    elif i > n - 2:
        i = n - 2
    t = f - i
    if t < 0.0:
        t = 0.0
    elif t > 1.0:
        t = 1.0
    return i, t


class _BilinearGrid:
    """Shared bilinear-interpolation machinery over a regular 2-D grid."""

    def __init__(self, x_axis: np.ndarray, y_axis: np.ndarray, values: np.ndarray):
        if values.shape != (x_axis.size, y_axis.size):
            raise InputError(
                f"table shape {values.shape} does not match axes "
                f"({x_axis.size}, {y_axis.size})"
            )
        if x_axis.size < 2 or y_axis.size < 2:
            raise InputError("table axes need at least two points")
        self.x_axis = np.asarray(x_axis, dtype=float)
        self.y_axis = np.asarray(y_axis, dtype=float)
        self.values = np.asarray(values, dtype=float)
        # A single NaN/Inf entry would silently poison every Newton solve
        # that interpolates near it; reject the table at load instead.
        if not (np.isfinite(self.x_axis).all() and np.isfinite(self.y_axis).all()):
            raise InputError("device table axes contain non-finite values")
        if not np.isfinite(self.values).all():
            bad = int(np.size(self.values) - np.count_nonzero(np.isfinite(self.values)))
            raise InputError(
                f"device table contains {bad} non-finite (NaN/Inf) entries; "
                "refusing to load it"
            )
        self._x0 = float(self.x_axis[0])
        self._y0 = float(self.y_axis[0])
        self._dx = float(self.x_axis[1] - self.x_axis[0])
        self._dy = float(self.y_axis[1] - self.y_axis[0])
        self._nx = self.x_axis.size
        self._ny = self.y_axis.size

    def lookup(self, x: float, y: float) -> float:
        """Bilinear interpolation with clamping at the table edges."""
        ix, tx = _cell_locate((x - self._x0) / self._dx, self._nx)
        iy, ty = _cell_locate((y - self._y0) / self._dy, self._ny)
        v = self.values
        v00 = v[ix, iy]
        v10 = v[ix + 1, iy]
        v01 = v[ix, iy + 1]
        v11 = v[ix + 1, iy + 1]
        return (
            v00 * (1.0 - tx) * (1.0 - ty)
            + v10 * tx * (1.0 - ty)
            + v01 * (1.0 - tx) * ty
            + v11 * tx * ty
        )

    def lookup_with_dy(self, x: float, y: float) -> tuple[float, float]:
        """Value and partial derivative with respect to ``y``.

        The derivative of the bilinear interpolant is piecewise constant in
        ``y`` within a cell -- sufficient for Newton on a fine grid.
        """
        ix, tx = _cell_locate((x - self._x0) / self._dx, self._nx)
        iy, ty = _cell_locate((y - self._y0) / self._dy, self._ny)
        v = self.values
        v00 = v[ix, iy]
        v10 = v[ix + 1, iy]
        v01 = v[ix, iy + 1]
        v11 = v[ix + 1, iy + 1]
        lo = v00 * (1.0 - tx) + v10 * tx
        hi = v01 * (1.0 - tx) + v11 * tx
        value = lo * (1.0 - ty) + hi * ty
        dvalue_dy = (hi - lo) / self._dy
        return value, dvalue_dy

    def lookup_many(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Vectorised bilinear interpolation, edge handling identical to
        the scalar :meth:`lookup` (shared :func:`_cell_locate`)."""
        ix, tx = _cell_locate((np.asarray(x, float) - self._x0) / self._dx, self._nx)
        iy, ty = _cell_locate((np.asarray(y, float) - self._y0) / self._dy, self._ny)
        v = self.values
        return (
            v[ix, iy] * (1.0 - tx) * (1.0 - ty)
            + v[ix + 1, iy] * tx * (1.0 - ty)
            + v[ix, iy + 1] * (1.0 - tx) * ty
            + v[ix + 1, iy + 1] * tx * ty
        )

    def gradient_many(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised value and partial derivative with respect to ``y``,
        term-for-term the same arithmetic as :meth:`lookup_with_dy`."""
        ix, tx = _cell_locate((np.asarray(x, float) - self._x0) / self._dx, self._nx)
        iy, ty = _cell_locate((np.asarray(y, float) - self._y0) / self._dy, self._ny)
        v = self.values
        v00 = v[ix, iy]
        v10 = v[ix + 1, iy]
        v01 = v[ix, iy + 1]
        v11 = v[ix + 1, iy + 1]
        lo = v00 * (1.0 - tx) + v10 * tx
        hi = v01 * (1.0 - tx) + v11 * tx
        value = lo * (1.0 - ty) + hi * ty
        dvalue_dy = (hi - lo) / self._dy
        return value, dvalue_dy

    def lookup_array(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Vectorised bilinear interpolation (used by the simulator)."""
        return self.lookup_many(x, y)


class GridBank:
    """A stack of congruent :class:`_BilinearGrid` tables for per-element
    batched lookup.

    The batch stage solver integrates arcs of *different* cells in one
    array-shaped loop; each element carries an index ``k`` selecting its
    table.  All grids must share the same axes (stage tables built from
    one process with the same point count do), so one fancy-indexed read
    ``values[k, ix, iy]`` serves the whole batch.
    """

    def __init__(self, grids: list[_BilinearGrid]):
        if not grids:
            raise InputError("grid bank needs at least one grid")
        base = grids[0]
        for grid in grids[1:]:
            if not (
                np.array_equal(grid.x_axis, base.x_axis)
                and np.array_equal(grid.y_axis, base.y_axis)
            ):
                raise InputError("grid bank requires congruent grid axes")
        self._x0 = base._x0
        self._y0 = base._y0
        self._dx = base._dx
        self._dy = base._dy
        self._nx = base._nx
        self._ny = base._ny
        self.values = np.stack([grid.values for grid in grids])
        self._flat = self.values.reshape(-1)

    def __len__(self) -> int:
        return self.values.shape[0]

    def lookup_many(self, k: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Per-element bilinear interpolation: element ``i`` reads table
        ``k[i]`` at ``(x[i], y[i])``."""
        ix, tx = _cell_locate((np.asarray(x, float) - self._x0) / self._dx, self._nx)
        iy, ty = _cell_locate((np.asarray(y, float) - self._y0) / self._dy, self._ny)
        base = (k * self._nx + ix) * self._ny + iy
        flat = self.values.reshape(-1)
        return (
            flat[base] * (1.0 - tx) * (1.0 - ty)
            + flat[base + self._ny] * tx * (1.0 - ty)
            + flat[base + 1] * (1.0 - tx) * ty
            + flat[base + self._ny + 1] * tx * ty
        )

    def gradient_many(
        self, k: np.ndarray, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-element value and d/dy, matching
        :meth:`_BilinearGrid.lookup_with_dy` arithmetic exactly."""
        return self.gradient_many_prepared(*self.prepare_x(k, x), y)

    def prepare_x(
        self, k: np.ndarray, x: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Precompute the x-side of :meth:`gradient_many` for a fixed
        ``(k, x)`` batch: the flattened row offset plus the x-cell
        fraction and its complement.  Within one Newton solve only ``y``
        changes, so the stage solver hoists this out of the residual and
        pays the x-side locate once per time step instead of once per
        function evaluation."""
        ix, tx = _cell_locate((np.asarray(x, float) - self._x0) / self._dx, self._nx)
        row = (k * self._nx + ix) * self._ny
        return row, tx, 1.0 - tx

    def gradient_many_prepared(
        self,
        row: np.ndarray,
        tx: np.ndarray,
        one_m_tx: np.ndarray,
        y: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`gradient_many` with the x-side prepared by
        :meth:`prepare_x`.  Every float operation keeps the reference
        evaluation order (``v00*(1-tx) + v10*tx`` etc.), so the results
        are bit-identical; the in-place updates only touch the freshly
        gathered corner arrays."""
        iy, ty = _cell_locate((np.asarray(y, float) - self._y0) / self._dy, self._ny)
        # One flat gather per corner instead of four multi-axis fancy
        # indexes; the elements read are identical.
        base = row + iy
        flat = self._flat
        v00 = flat[base]
        v10 = flat[base + self._ny]
        v01 = flat[base + 1]
        v11 = flat[base + self._ny + 1]
        np.multiply(v00, one_m_tx, out=v00)
        v00 += np.multiply(v10, tx, out=v10)  # lo = v00*(1-tx) + v10*tx
        np.multiply(v01, one_m_tx, out=v01)
        v01 += np.multiply(v11, tx, out=v11)  # hi = v01*(1-tx) + v11*tx
        dvalue_dy = np.subtract(v01, v00)
        dvalue_dy /= self._dy  # (hi - lo) / dy
        one_m_ty = 1.0 - ty
        np.multiply(v00, one_m_ty, out=v00)
        v00 += np.multiply(v01, ty, out=v01)  # value = lo*(1-ty) + hi*ty
        return v00, dvalue_dy


class DeviceTable:
    """Tabulated ``I_D(V_GS, V_DS)`` for one MOSFET.

    The grid spans ``[v_min, v_max]`` on both axes, covering the full rail
    range plus a small margin so that coupling overshoots never leave the
    table.
    """

    DEFAULT_POINTS = 121

    def __init__(
        self,
        device: Mosfet,
        points: int = DEFAULT_POINTS,
        margin: float = 0.3,
    ):
        self.device = device
        process = device.process
        lo = -margin
        hi = process.vdd + margin
        if device.params.polarity < 0:
            lo, hi = -hi, -lo
        axis = np.linspace(lo, hi, points)
        vgs_grid, vds_grid = np.meshgrid(axis, axis, indexing="ij")
        currents = device.ids_array(vgs_grid, vds_grid)
        self._grid = _BilinearGrid(axis, axis, currents)

    def ids(self, vgs: float, vds: float) -> float:
        """Interpolated drain current."""
        return self._grid.lookup(vgs, vds)

    def ids_with_gds(self, vgs: float, vds: float) -> tuple[float, float]:
        """Interpolated drain current and output conductance."""
        return self._grid.lookup_with_dy(vgs, vds)

    def ids_array(self, vgs: np.ndarray, vds: np.ndarray) -> np.ndarray:
        """Vectorised interpolated drain current."""
        return self._grid.lookup_array(vgs, vds)

    @property
    def axis(self) -> np.ndarray:
        return self._grid.x_axis

    def max_interpolation_error(self, samples: int = 40) -> float:
        """Worst absolute error against the analytic model on off-grid
        sample points, normalised by the device on-current."""
        axis = self._grid.x_axis
        mid = 0.5 * (axis[:-1] + axis[1:])
        step = max(1, mid.size // samples)
        probe = mid[::step]
        vgs, vds = np.meshgrid(probe, probe, indexing="ij")
        exact = self.device.ids_array(vgs, vds)
        approx = self._grid.lookup_array(vgs, vds)
        scale = max(self.device.saturation_current(), 1e-12)
        return float(np.max(np.abs(exact - approx)) / scale)


class StageTable:
    """Net output-node current of a collapsed CMOS stage.

    For a stage whose pull-up and pull-down networks have been collapsed to
    single equivalent PMOS/NMOS devices driven by the same switching input,
    the output node obeys ``C dV/dt = I(V_in, V_out)`` with

    ``I(V_in, V_out) = -I_P(V_in - V_DD, V_out - V_DD) - I_N(V_in, V_out)``

    where ``I_P``/``I_N`` follow the drain-source convention of
    :class:`Mosfet` (current *into* the output node is positive here).
    Tabulating ``I`` directly gives the waveform engine a single lookup per
    Newton iteration.
    """

    DEFAULT_POINTS = 121

    def __init__(
        self,
        pull_up: Mosfet | None,
        pull_down: Mosfet | None,
        process: ProcessParams | None = None,
        points: int = DEFAULT_POINTS,
        margin: float = 0.3,
    ):
        if pull_up is None and pull_down is None:
            raise InputError("stage needs at least one of pull-up / pull-down")
        self.process = process if process is not None else default_process()
        vdd = self.process.vdd
        axis = np.linspace(-margin, vdd + margin, points)
        vin, vout = np.meshgrid(axis, axis, indexing="ij")
        current = np.zeros_like(vin)
        if pull_up is not None:
            # PMOS source at VDD: V_GS = vin - vdd, V_DS = vout - vdd.
            # Its (negative) drain current flows out of VDD into the node.
            current -= pull_up.ids_array(vin - vdd, vout - vdd)
        if pull_down is not None:
            # NMOS source at GND: V_GS = vin, V_DS = vout; drains the node.
            current -= pull_down.ids_array(vin, vout)
        self.pull_up = pull_up
        self.pull_down = pull_down
        self._grid = _BilinearGrid(axis, axis, current)

    def current(self, vin: float, vout: float) -> float:
        """Net current into the output node."""
        return self._grid.lookup(vin, vout)

    def current_with_dvout(self, vin: float, vout: float) -> tuple[float, float]:
        """Net current and its derivative with respect to ``V_out``."""
        return self._grid.lookup_with_dy(vin, vout)

    def current_array(self, vin: np.ndarray, vout: np.ndarray) -> np.ndarray:
        """Vectorised net current."""
        return self._grid.lookup_array(vin, vout)

    def current_many(self, vin: np.ndarray, vout: np.ndarray) -> np.ndarray:
        """Vectorised net current with scalar-identical edge handling."""
        return self._grid.lookup_many(vin, vout)

    def current_with_dvout_many(
        self, vin: np.ndarray, vout: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised net current and d/dV_out."""
        return self._grid.gradient_many(vin, vout)

    @property
    def grid(self) -> _BilinearGrid:
        """The underlying interpolation grid (for :class:`GridBank`)."""
        return self._grid
