"""Tabulated DC device models.

Following TETA and the paper (Section 3), the DC behaviour of transistors is
stored in tables and interpolated during timing analysis.  The paper notes
that "due to the fine discretization of the tables we do not get convergence
problems" with classical Newton iteration -- so the tables here default to a
fine grid and expose both the interpolated current and its partial
derivative with respect to the output voltage, which is exactly what the
Newton loop of the waveform engine needs.

Two table flavours are provided:

* :class:`DeviceTable` -- ``I_D(V_GS, V_DS)`` for one transistor.
* :class:`StageTable` -- the *net* output-node current
  ``I(V_in, V_out) = I_pullup - I_pulldown`` of a collapsed CMOS stage.
  Collapsing the stage into one table halves the interpolation work per
  Newton iteration, the dominant cost of the whole analysis.
"""

from __future__ import annotations

import numpy as np

from repro.devices.mosfet import Mosfet
from repro.devices.params import ProcessParams, default_process


class _BilinearGrid:
    """Shared bilinear-interpolation machinery over a regular 2-D grid."""

    def __init__(self, x_axis: np.ndarray, y_axis: np.ndarray, values: np.ndarray):
        if values.shape != (x_axis.size, y_axis.size):
            raise ValueError(
                f"table shape {values.shape} does not match axes "
                f"({x_axis.size}, {y_axis.size})"
            )
        if x_axis.size < 2 or y_axis.size < 2:
            raise ValueError("table axes need at least two points")
        self.x_axis = np.asarray(x_axis, dtype=float)
        self.y_axis = np.asarray(y_axis, dtype=float)
        self.values = np.asarray(values, dtype=float)
        self._x0 = float(self.x_axis[0])
        self._y0 = float(self.y_axis[0])
        self._dx = float(self.x_axis[1] - self.x_axis[0])
        self._dy = float(self.y_axis[1] - self.y_axis[0])
        self._nx = self.x_axis.size
        self._ny = self.y_axis.size

    def lookup(self, x: float, y: float) -> float:
        """Bilinear interpolation with clamping at the table edges."""
        fx = (x - self._x0) / self._dx
        fy = (y - self._y0) / self._dy
        ix = int(fx)
        iy = int(fy)
        if ix < 0:
            ix = 0
        elif ix > self._nx - 2:
            ix = self._nx - 2
        if iy < 0:
            iy = 0
        elif iy > self._ny - 2:
            iy = self._ny - 2
        tx = fx - ix
        ty = fy - iy
        if tx < 0.0:
            tx = 0.0
        elif tx > 1.0:
            tx = 1.0
        if ty < 0.0:
            ty = 0.0
        elif ty > 1.0:
            ty = 1.0
        v = self.values
        v00 = v[ix, iy]
        v10 = v[ix + 1, iy]
        v01 = v[ix, iy + 1]
        v11 = v[ix + 1, iy + 1]
        return (
            v00 * (1.0 - tx) * (1.0 - ty)
            + v10 * tx * (1.0 - ty)
            + v01 * (1.0 - tx) * ty
            + v11 * tx * ty
        )

    def lookup_with_dy(self, x: float, y: float) -> tuple[float, float]:
        """Value and partial derivative with respect to ``y``.

        The derivative of the bilinear interpolant is piecewise constant in
        ``y`` within a cell -- sufficient for Newton on a fine grid.
        """
        fx = (x - self._x0) / self._dx
        fy = (y - self._y0) / self._dy
        ix = int(fx)
        iy = int(fy)
        if ix < 0:
            ix = 0
        elif ix > self._nx - 2:
            ix = self._nx - 2
        if iy < 0:
            iy = 0
        elif iy > self._ny - 2:
            iy = self._ny - 2
        tx = fx - ix
        ty = fy - iy
        if tx < 0.0:
            tx = 0.0
        elif tx > 1.0:
            tx = 1.0
        if ty < 0.0:
            ty = 0.0
        elif ty > 1.0:
            ty = 1.0
        v = self.values
        v00 = v[ix, iy]
        v10 = v[ix + 1, iy]
        v01 = v[ix, iy + 1]
        v11 = v[ix + 1, iy + 1]
        lo = v00 * (1.0 - tx) + v10 * tx
        hi = v01 * (1.0 - tx) + v11 * tx
        value = lo * (1.0 - ty) + hi * ty
        dvalue_dy = (hi - lo) / self._dy
        return value, dvalue_dy

    def lookup_array(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Vectorised bilinear interpolation (used by the simulator)."""
        fx = np.clip((np.asarray(x, float) - self._x0) / self._dx, 0.0, self._nx - 1 - 1e-12)
        fy = np.clip((np.asarray(y, float) - self._y0) / self._dy, 0.0, self._ny - 1 - 1e-12)
        ix = fx.astype(int)
        iy = fy.astype(int)
        tx = fx - ix
        ty = fy - iy
        v = self.values
        return (
            v[ix, iy] * (1 - tx) * (1 - ty)
            + v[ix + 1, iy] * tx * (1 - ty)
            + v[ix, iy + 1] * (1 - tx) * ty
            + v[ix + 1, iy + 1] * tx * ty
        )


class DeviceTable:
    """Tabulated ``I_D(V_GS, V_DS)`` for one MOSFET.

    The grid spans ``[v_min, v_max]`` on both axes, covering the full rail
    range plus a small margin so that coupling overshoots never leave the
    table.
    """

    DEFAULT_POINTS = 121

    def __init__(
        self,
        device: Mosfet,
        points: int = DEFAULT_POINTS,
        margin: float = 0.3,
    ):
        self.device = device
        process = device.process
        lo = -margin
        hi = process.vdd + margin
        if device.params.polarity < 0:
            lo, hi = -hi, -lo
        axis = np.linspace(lo, hi, points)
        vgs_grid, vds_grid = np.meshgrid(axis, axis, indexing="ij")
        currents = device.ids_array(vgs_grid, vds_grid)
        self._grid = _BilinearGrid(axis, axis, currents)

    def ids(self, vgs: float, vds: float) -> float:
        """Interpolated drain current."""
        return self._grid.lookup(vgs, vds)

    def ids_with_gds(self, vgs: float, vds: float) -> tuple[float, float]:
        """Interpolated drain current and output conductance."""
        return self._grid.lookup_with_dy(vgs, vds)

    def ids_array(self, vgs: np.ndarray, vds: np.ndarray) -> np.ndarray:
        """Vectorised interpolated drain current."""
        return self._grid.lookup_array(vgs, vds)

    @property
    def axis(self) -> np.ndarray:
        return self._grid.x_axis

    def max_interpolation_error(self, samples: int = 40) -> float:
        """Worst absolute error against the analytic model on off-grid
        sample points, normalised by the device on-current."""
        axis = self._grid.x_axis
        mid = 0.5 * (axis[:-1] + axis[1:])
        step = max(1, mid.size // samples)
        probe = mid[::step]
        vgs, vds = np.meshgrid(probe, probe, indexing="ij")
        exact = self.device.ids_array(vgs, vds)
        approx = self._grid.lookup_array(vgs, vds)
        scale = max(self.device.saturation_current(), 1e-12)
        return float(np.max(np.abs(exact - approx)) / scale)


class StageTable:
    """Net output-node current of a collapsed CMOS stage.

    For a stage whose pull-up and pull-down networks have been collapsed to
    single equivalent PMOS/NMOS devices driven by the same switching input,
    the output node obeys ``C dV/dt = I(V_in, V_out)`` with

    ``I(V_in, V_out) = -I_P(V_in - V_DD, V_out - V_DD) - I_N(V_in, V_out)``

    where ``I_P``/``I_N`` follow the drain-source convention of
    :class:`Mosfet` (current *into* the output node is positive here).
    Tabulating ``I`` directly gives the waveform engine a single lookup per
    Newton iteration.
    """

    DEFAULT_POINTS = 121

    def __init__(
        self,
        pull_up: Mosfet | None,
        pull_down: Mosfet | None,
        process: ProcessParams | None = None,
        points: int = DEFAULT_POINTS,
        margin: float = 0.3,
    ):
        if pull_up is None and pull_down is None:
            raise ValueError("stage needs at least one of pull-up / pull-down")
        self.process = process if process is not None else default_process()
        vdd = self.process.vdd
        axis = np.linspace(-margin, vdd + margin, points)
        vin, vout = np.meshgrid(axis, axis, indexing="ij")
        current = np.zeros_like(vin)
        if pull_up is not None:
            # PMOS source at VDD: V_GS = vin - vdd, V_DS = vout - vdd.
            # Its (negative) drain current flows out of VDD into the node.
            current -= pull_up.ids_array(vin - vdd, vout - vdd)
        if pull_down is not None:
            # NMOS source at GND: V_GS = vin, V_DS = vout; drains the node.
            current -= pull_down.ids_array(vin, vout)
        self.pull_up = pull_up
        self.pull_down = pull_down
        self._grid = _BilinearGrid(axis, axis, current)

    def current(self, vin: float, vout: float) -> float:
        """Net current into the output node."""
        return self._grid.lookup(vin, vout)

    def current_with_dvout(self, vin: float, vout: float) -> tuple[float, float]:
        """Net current and its derivative with respect to ``V_out``."""
        return self._grid.lookup_with_dy(vin, vout)

    def current_array(self, vin: np.ndarray, vout: np.ndarray) -> np.ndarray:
        """Vectorised net current."""
        return self._grid.lookup_array(vin, vout)
