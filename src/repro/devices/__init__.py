"""Transistor-level device models.

This subpackage provides the device substrate the paper's transistor-level
timing analysis is built on (Section 3 of Ringe et al., DATE 2000):

* :mod:`repro.devices.params` -- 0.5 um process constants.
* :mod:`repro.devices.mosfet` -- smooth analytic MOSFET DC model.
* :mod:`repro.devices.tables` -- tabulated DC model with bilinear
  interpolation, the representation actually used during timing analysis.
* :mod:`repro.devices.newton` -- damped scalar Newton iteration used by the
  waveform engine ("classical Newton approximation" per the paper, in
  contrast to TETA's successive-chord method).
"""

from repro.devices.mosfet import Mosfet, MosfetParams, nmos, pmos
from repro.devices.newton import NewtonError, NewtonResult, solve_newton
from repro.devices.params import ProcessParams, default_process
from repro.devices.tables import DeviceTable, StageTable

__all__ = [
    "DeviceTable",
    "Mosfet",
    "MosfetParams",
    "NewtonError",
    "NewtonResult",
    "ProcessParams",
    "StageTable",
    "default_process",
    "nmos",
    "pmos",
    "solve_newton",
]
